//! The sharded KV server.
//!
//! N range-partitioned `lsm::Db` shards behind one TCP listener. Every
//! shard is opened against a per-shard [`offload::ShardOffloadHandle`]
//! onto **one** shared [`offload::OffloadService`], so compaction jobs
//! from all shards contend for the same K engine slots — the
//! multi-tenant regime the paper's single-store evaluation never
//! measured. All shards also share one `obs` bundle and one block
//! cache, so a single metrics export shows the whole box.
//!
//! Each connection is handled by its own task: read a frame, decode,
//! dispatch, write the response — strictly in request order, which is
//! what allows clients to pipeline. Writes are moved onto tokio's
//! blocking pool, because `lsm::Db::write` parks the calling thread
//! while its group commits: run inline it would stall the runtime
//! worker (and with it every other connection), run on the blocking
//! pool many connections' writes overlap and ride one shard's
//! leader-elected group commit — one WAL sync acknowledges them all.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

use tokio::io::{AsyncReadExt, AsyncWriteExt};
use tokio::net::{TcpListener, TcpStream};

use crate::proto::{self, Request, Response};
use crate::repl::{self, ReplState, SEMI_SYNC_WAIT};
use crate::router::ShardRouter;

/// How the server is built: shard count, store tuning, engine slots.
#[derive(Clone)]
pub struct ServerConfig {
    /// Number of range-partitioned shards.
    pub shards: usize,
    /// Directory holding one `shard<i>` store per shard.
    pub root: PathBuf,
    /// Engine slots on the shared offload service; `0` runs all
    /// compactions on the CPU engine instead (no offload service).
    pub engine_slots: usize,
    /// Sync the WAL on *every* write, regardless of per-request flags.
    /// Required for the power-cut guarantee: an acknowledged write must
    /// survive `SIGKILL`.
    pub sync_writes: bool,
    /// Per-shard memtable budget.
    pub write_buffer_size: usize,
    /// Per-shard SSTable target size.
    pub max_file_size: u64,
    /// Key width for the default decimal shard boundaries.
    pub key_len: usize,
    /// Pre-split hint: the key numbers the workload actually uses are
    /// dense in `[0, key_space)` (e.g. the YCSB record count). `None`
    /// splits the full `key_len`-digit keyspace — correct for uniformly
    /// spread keys, but it routes dense db_bench/YCSB record ids all to
    /// shard 0 (the `server.shard.skew_permille` gauge will say so).
    pub key_space: Option<u64>,
    /// Explicit shard boundaries; `None` derives even decimal splits
    /// from `key_len` and `key_space`.
    pub boundaries: Option<Vec<Vec<u8>>>,
    /// Observability bundle shared by shards, scheduler and server
    /// metrics; a fresh wall-clock bundle when `None`.
    pub obs: Option<Arc<obs::Obs>>,
    /// Storage environment the shards open against; `None` uses the
    /// default OS filesystem. Tests inject a fault-injecting env here.
    pub env: Option<Arc<dyn sstable::env::StorageEnv>>,
    /// Key-value separation threshold passed through to every shard
    /// (`None` disables the value log).
    pub value_log_threshold: Option<usize>,
    /// Run as a replica of the leader at this address: reject writes,
    /// stream and apply its WAL, serve token-gated reads.
    pub replica_of: Option<String>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            shards: 4,
            root: PathBuf::from("kv-data"),
            engine_slots: 2,
            sync_writes: false,
            write_buffer_size: 4 << 20,
            max_file_size: 2 << 20,
            key_len: 16,
            key_space: None,
            boundaries: None,
            obs: None,
            env: None,
            value_log_threshold: None,
            replica_of: None,
        }
    }
}

/// Pre-registered server metric handles (`server.*` names).
struct ServerMetrics {
    get_micros: Arc<obs::Histogram>,
    put_micros: Arc<obs::Histogram>,
    del_micros: Arc<obs::Histogram>,
    scan_micros: Arc<obs::Histogram>,
    batch_micros: Arc<obs::Histogram>,
    stats_micros: Arc<obs::Histogram>,
    /// Control-plane requests: replication acks, promotion, sequence
    /// tokens, token-gated reads, shutdown.
    ctl_micros: Arc<obs::Histogram>,
    proto_errors: Arc<obs::Counter>,
    connections: Arc<obs::Gauge>,
    /// Per-shard request counters, index = shard.
    shard_requests: Vec<Arc<obs::Counter>>,
    /// Per-shard in-flight request depth gauges.
    shard_in_flight: Vec<Arc<obs::Gauge>>,
    /// Permille of requests absorbed by the hottest shard (1000/N = even).
    skew_permille: Arc<obs::Gauge>,
    /// Live in-flight counts backing the gauges.
    in_flight: Vec<AtomicU64>,
    requests_total: AtomicU64,
    live_connections: AtomicU64,
}

impl ServerMetrics {
    fn new(registry: &obs::Registry, shards: usize) -> Self {
        ServerMetrics {
            get_micros: registry.histogram("server.req.get_micros"),
            put_micros: registry.histogram("server.req.put_micros"),
            del_micros: registry.histogram("server.req.del_micros"),
            scan_micros: registry.histogram("server.req.scan_micros"),
            batch_micros: registry.histogram("server.req.batch_micros"),
            stats_micros: registry.histogram("server.req.stats_micros"),
            ctl_micros: registry.histogram("server.req.ctl_micros"),
            proto_errors: registry.counter("server.proto.errors"),
            connections: registry.gauge("server.connections"),
            shard_requests: (0..shards)
                .map(|i| registry.counter(&format!("server.shard{i}.requests")))
                .collect(),
            shard_in_flight: (0..shards)
                .map(|i| registry.gauge(&format!("server.shard{i}.in_flight")))
                .collect(),
            skew_permille: registry.gauge("server.shard.skew_permille"),
            in_flight: (0..shards).map(|_| AtomicU64::new(0)).collect(),
            requests_total: AtomicU64::new(0),
            live_connections: AtomicU64::new(0),
        }
    }

    /// Counts a request against `shard`, refreshing the skew gauge every
    /// 256th request (reading N counters is cheap, but not per-op cheap).
    fn count_shard(&self, shard: usize) {
        if let Some(c) = self.shard_requests.get(shard) {
            c.inc();
        }
        let total = self.requests_total.fetch_add(1, Ordering::Relaxed) + 1;
        if total % 256 == 0 {
            self.refresh_skew();
        }
    }

    /// Recomputes `server.shard.skew_permille` from the shard counters.
    fn refresh_skew(&self) {
        let counts: Vec<u64> = self.shard_requests.iter().map(|c| c.get()).collect();
        let total: u64 = counts.iter().sum();
        let max = counts.iter().copied().max().unwrap_or(0);
        if let Some(permille) = (max * 1000).checked_div(total) {
            self.skew_permille.set(permille);
        }
    }

    fn enter_shard(&self, shard: usize) {
        if let (Some(n), Some(g)) = (self.in_flight.get(shard), self.shard_in_flight.get(shard)) {
            g.set(n.fetch_add(1, Ordering::Relaxed) + 1);
        }
    }

    fn leave_shard(&self, shard: usize) {
        if let (Some(n), Some(g)) = (self.in_flight.get(shard), self.shard_in_flight.get(shard)) {
            g.set(n.fetch_sub(1, Ordering::Relaxed).saturating_sub(1));
        }
    }
}

/// State shared by the accept loop and every connection task.
pub(crate) struct Shared {
    pub(crate) shards: Vec<lsm::Db>,
    router: ShardRouter,
    pub(crate) obs: Arc<obs::Obs>,
    offload: Option<Arc<offload::OffloadService>>,
    metrics: ServerMetrics,
    /// Mirror of [`ServerConfig::sync_writes`]: when set, every write
    /// fsyncs regardless of its per-request flag, so dispatch must treat
    /// all writes as blocking-pool work.
    pub(crate) force_sync: bool,
    shutdown: AtomicBool,
    /// Replication role, replica progress table and `repl.*` metrics.
    pub(crate) repl: ReplState,
    /// Bound listen address, set by `start` (used by the shutdown path
    /// to unblock its own accept loop).
    listen_addr: OnceLock<std::net::SocketAddr>,
}

/// The server: opened stores + router + shared scheduler, ready to
/// accept connections via [`KvServer::start`].
pub struct KvServer {
    shared: Arc<Shared>,
    replica_of: Option<String>,
}

/// A running server: bound address plus shutdown control. Dropping the
/// handle does *not* stop the server; call [`ServerHandle::shutdown`].
pub struct ServerHandle {
    shared: Arc<Shared>,
    addr: std::net::SocketAddr,
}

impl KvServer {
    /// Opens `config.shards` stores under `config.root`, all sharing one
    /// offload scheduler, one block cache and one obs bundle.
    pub fn open(config: ServerConfig) -> lsm::Result<KvServer> {
        let shards = config.shards.max(1);
        let obs = config.obs.clone().unwrap_or_else(obs::Obs::wall);
        let offload = if config.engine_slots > 0 {
            Some(Arc::new(
                offload::OffloadService::with_slots(
                    fcae::FcaeConfig::two_input(),
                    config.engine_slots,
                    offload::OffloadConfig::default(),
                )
                .with_obs(Arc::clone(&obs)),
            ))
        } else {
            None
        };
        // One cache budget for the whole box, not per shard.
        let shared_cache = Some(sstable::cache::BlockCache::new(8 << 20));
        let boundaries = config
            .boundaries
            .clone()
            .unwrap_or_else(|| match config.key_space {
                Some(space) => ShardRouter::split_boundaries(space, shards, config.key_len),
                None => ShardRouter::decimal_boundaries(shards, config.key_len),
            });
        let router = ShardRouter::new(boundaries);

        let mut dbs = Vec::with_capacity(shards);
        for i in 0..shards {
            let mut options = lsm::Options {
                write_buffer_size: config.write_buffer_size,
                max_file_size: config.max_file_size,
                sync_writes: config.sync_writes,
                shared_block_cache: shared_cache.clone(),
                obs: Some(Arc::clone(&obs)),
                slowdown_sleep: false,
                value_log_threshold_bytes: config.value_log_threshold,
                ..Default::default()
            };
            if let Some(env) = &config.env {
                options.env = Arc::clone(env);
            }
            let dir = config.root.join(format!("shard{i}"));
            let db = match &offload {
                Some(svc) => {
                    lsm::Db::open_with_engine(&dir, options, Arc::new(svc.shard_handle(i)))?
                }
                None => lsm::Db::open(&dir, options)?,
            };
            dbs.push(db);
        }

        let is_replica = config.replica_of.is_some();
        if !is_replica {
            // Leaders pin their WAL from the start so a replica joining
            // later (or reconnecting with zeroed cursors) can replay the
            // full history. The floor advances as replicas acknowledge.
            for db in &dbs {
                if let Ok(cursor) = db.repl_start_cursor() {
                    db.set_wal_retention_floor(cursor.segment);
                }
            }
        }
        let metrics = ServerMetrics::new(&obs.registry, shards);
        let repl = ReplState::new(&obs.registry, is_replica);
        Ok(KvServer {
            shared: Arc::new(Shared {
                shards: dbs,
                router,
                obs,
                offload,
                metrics,
                force_sync: config.sync_writes,
                shutdown: AtomicBool::new(false),
                repl,
                listen_addr: OnceLock::new(),
            }),
            replica_of: config.replica_of,
        })
    }

    /// Binds `addr` (use port 0 for an OS-assigned port), spawns the
    /// accept loop, and returns the running server's handle.
    pub fn start(self, addr: &str) -> std::io::Result<ServerHandle> {
        let rt = tokio::runtime::Runtime::new()?;
        let listener = rt.block_on(TcpListener::bind(addr))?;
        let local = listener.local_addr()?;
        let _ = self.shared.listen_addr.set(local);
        let shared = Arc::clone(&self.shared);
        tokio::spawn(accept_loop(shared, listener));
        if let Some(leader) = self.replica_of {
            let shared = Arc::clone(&self.shared);
            std::thread::spawn(move || repl::run_replica(shared, leader));
        }
        Ok(ServerHandle {
            shared: self.shared,
            addr: local,
        })
    }
}

impl ServerHandle {
    /// The bound listen address.
    pub fn addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// The bundle all shards, the scheduler and the server record into.
    pub fn obs(&self) -> Arc<obs::Obs> {
        Arc::clone(&self.shared.obs)
    }

    /// The shared offload scheduler (`None` in CPU-only mode).
    pub fn offload(&self) -> Option<Arc<offload::OffloadService>> {
        self.shared.offload.as_ref().map(Arc::clone)
    }

    /// Flushes every shard and waits for background work to settle
    /// (benches call this before reading compaction metrics).
    pub fn quiesce(&self) {
        for db in &self.shared.shards {
            let _ = db.flush();
        }
        for db in &self.shared.shards {
            db.wait_for_background_quiescence();
        }
    }

    /// Stops accepting connections. In-flight connections finish their
    /// current request and exit at the next read (connection reset); the
    /// stores close when the last task drops the shared state.
    pub fn shutdown(&self) {
        self.shared.shutdown.store(true, Ordering::SeqCst);
        self.shared.repl.request_stop();
        // Unblock the accept loop with a throwaway connection.
        let _ = std::net::TcpStream::connect(self.addr);
    }

    /// Blocks until a graceful shutdown ([`proto::Request::Shutdown`] or
    /// [`ServerHandle::shutdown`] followed by drain) completes — the
    /// `kv-server` binary's replacement for parking forever.
    pub fn wait_shutdown(&self) {
        self.shared.repl.wait_shutdown();
    }

    /// True while this node applies a leader's replication stream.
    pub fn is_replica(&self) -> bool {
        self.shared.repl.is_replica()
    }
}

async fn accept_loop(shared: Arc<Shared>, listener: TcpListener) {
    loop {
        let Ok((stream, _)) = listener.accept().await else {
            break;
        };
        if shared.shutdown.load(Ordering::SeqCst) {
            break;
        }
        let _ = stream.set_nodelay(true);
        let shared = Arc::clone(&shared);
        tokio::spawn(async move {
            let m = &shared.metrics;
            m.connections
                .set(m.live_connections.fetch_add(1, Ordering::Relaxed) + 1);
            let _ = handle_connection(&shared, stream).await;
            m.connections.set(
                m.live_connections
                    .fetch_sub(1, Ordering::Relaxed)
                    .saturating_sub(1),
            );
        });
    }
}

/// Serves one connection until EOF, I/O error, shutdown, or a protocol
/// violation (which is answered with `ProtoErr` before closing).
async fn handle_connection(shared: &Arc<Shared>, mut stream: TcpStream) -> std::io::Result<()> {
    let mut body = Vec::new();
    let mut out = Vec::new();
    loop {
        if shared.shutdown.load(Ordering::SeqCst) {
            return Ok(());
        }
        let mut prefix = [0u8; 4];
        match stream.read_exact(&mut prefix).await {
            Ok(()) => {}
            // Clean EOF between frames ends the connection quietly.
            Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        }
        let len = match proto::frame_len(prefix) {
            Ok(len) => len,
            Err(e) => {
                shared.metrics.proto_errors.inc();
                out.clear();
                proto::encode_response(&mut out, &Response::ProtoErr(e.to_string()));
                stream.write_all(&out).await?;
                return Ok(());
            }
        };
        body.resize(len, 0);
        stream.read_exact(&mut body).await?;
        let req = match proto::decode_request(&body) {
            Ok(req) => req,
            Err(e) => {
                shared.metrics.proto_errors.inc();
                out.clear();
                proto::encode_response(&mut out, &Response::ProtoErr(e.to_string()));
                stream.write_all(&out).await?;
                return Ok(());
            }
        };
        // A replication handshake converts this connection into a one-way
        // feed; it never returns to the request/response loop.
        if let Request::ReplHello { cursors } = req {
            return repl::serve_feed(shared, stream, cursors).await;
        }
        let resp = dispatch(shared, req).await;
        out.clear();
        proto::encode_response(&mut out, &resp);
        stream.write_all(&out).await?;
    }
}

/// Executes one decoded request against the shards. Reads and buffered
/// writes run inline on the runtime worker (microsecond work). A *sync*
/// write parks its thread for a whole fsync while its group commits, so
/// it runs on the blocking pool, where concurrent connections' sync
/// writes overlap and ride one shard's group commit instead of
/// serializing the runtime worker — the fsync dwarfs the thread hop.
async fn dispatch(shared: &Arc<Shared>, req: Request) -> Response {
    let m = &shared.metrics;
    let t0 = shared.obs.now_micros();
    let (hist, resp) = match req {
        Request::Get { key } => (&m.get_micros, do_get(shared, &key)),
        Request::Put { key, value, sync } => (
            &m.put_micros,
            run_write(shared, sync, move |s| do_put(s, &key, &value, sync)).await,
        ),
        Request::Delete { key, sync } => (
            &m.del_micros,
            run_write(shared, sync, move |s| do_delete(s, &key, sync)).await,
        ),
        Request::Scan { start, end, limit } => (
            &m.scan_micros,
            do_scan(shared, &start, end.as_deref(), limit),
        ),
        Request::WriteBatch { ops, sync } => (
            &m.batch_micros,
            run_write(shared, sync, move |s| do_batch(s, ops, sync)).await,
        ),
        Request::Stats { json } => (&m.stats_micros, do_stats(shared, json)),
        // Intercepted in `handle_connection` before dispatch.
        Request::ReplHello { .. } => (
            &m.ctl_micros,
            Response::Err("replication handshake reached dispatch".into()),
        ),
        Request::ReplAck {
            replica,
            shard,
            segment,
            offset: _,
            seq,
        } => (
            &m.ctl_micros,
            do_repl_ack(shared, replica, shard as usize, segment, seq),
        ),
        Request::Promote => (&m.ctl_micros, do_promote(shared)),
        Request::GetSeq => (
            &m.ctl_micros,
            Response::SeqTokens(
                shared
                    .shards
                    .iter()
                    .map(lsm::Db::visible_sequence)
                    .collect(),
            ),
        ),
        // A token-gated read may block until the apply loop catches up,
        // so it runs on the blocking pool like a sync write does.
        Request::GetRyw { key, min_seqs } => (&m.ctl_micros, {
            let s = Arc::clone(shared);
            match tokio::task::spawn_blocking(move || do_get_ryw(&s, &key, &min_seqs)).await {
                Ok(resp) => resp,
                Err(e) => Response::Err(format!("read task failed: {e}")),
            }
        }),
        Request::Shutdown => (&m.ctl_micros, do_shutdown(shared).await),
    };
    hist.record(shared.obs.now_micros().saturating_sub(t0));
    resp
}

/// Runs a write inline when it is buffered (cheap), or on tokio's
/// blocking pool when it will fsync (either the request asked or the
/// server forces sync on every write). A cancelled/panicked pool task
/// maps to a protocol-level error instead of tearing the server down.
async fn run_write(
    shared: &Arc<Shared>,
    sync: bool,
    f: impl FnOnce(&Shared) -> Response + Send + 'static,
) -> Response {
    if !(sync || shared.force_sync) {
        return f(shared);
    }
    let s = Arc::clone(shared);
    match tokio::task::spawn_blocking(move || f(&s)).await {
        Ok(resp) => resp,
        Err(e) => Response::Err(format!("write task failed: {e}")),
    }
}

fn storage_err(e: &lsm::Error) -> Response {
    Response::Err(e.to_string())
}

fn do_get(shared: &Shared, key: &[u8]) -> Response {
    let shard = shared.router.shard_for(key);
    let Some(db) = shared.shards.get(shard) else {
        return Response::Err(format!("no shard {shard}"));
    };
    shared.metrics.count_shard(shard);
    shared.metrics.enter_shard(shard);
    let result = db.get(key);
    shared.metrics.leave_shard(shard);
    match result {
        Ok(Some(v)) => Response::Value(v),
        Ok(None) => Response::NotFound,
        Err(e) => storage_err(&e),
    }
}

/// Replicas apply the leader's stream only; client writes are refused
/// so the two stores cannot diverge.
fn reject_replica_write(shared: &Shared) -> Option<Response> {
    if shared.repl.is_replica() {
        Some(Response::Err(
            "replica: writes must go to the leader".into(),
        ))
    } else {
        None
    }
}

/// Semi-synchronous replication: a *sync* write on a leader with live
/// replicas also waits (bounded) for every registered replica to
/// acknowledge the shard's visible sequence. On timeout the write is
/// still acknowledged — durability on the leader is already settled by
/// the fsync — and `repl.ack_wait_timeouts` counts the degradation.
fn wait_repl(shared: &Shared, shard: usize, db: &lsm::Db, sync: bool) {
    if !(sync || shared.force_sync) || !shared.repl.has_replicas() {
        return;
    }
    let seq = db.visible_sequence();
    if !shared.repl.wait_replicated(shard, seq, SEMI_SYNC_WAIT) {
        shared.repl.metrics.ack_wait_timeouts.inc();
    }
}

fn do_put(shared: &Shared, key: &[u8], value: &[u8], sync: bool) -> Response {
    if let Some(resp) = reject_replica_write(shared) {
        return resp;
    }
    let shard = shared.router.shard_for(key);
    let Some(db) = shared.shards.get(shard) else {
        return Response::Err(format!("no shard {shard}"));
    };
    shared.metrics.count_shard(shard);
    shared.metrics.enter_shard(shard);
    let mut batch = lsm::WriteBatch::new();
    batch.put(key, value);
    let result = db.write(batch, lsm::WriteOptions { sync });
    shared.metrics.leave_shard(shard);
    match result {
        Ok(()) => {
            wait_repl(shared, shard, db, sync);
            Response::Ok
        }
        Err(e) => storage_err(&e),
    }
}

fn do_delete(shared: &Shared, key: &[u8], sync: bool) -> Response {
    if let Some(resp) = reject_replica_write(shared) {
        return resp;
    }
    let shard = shared.router.shard_for(key);
    let Some(db) = shared.shards.get(shard) else {
        return Response::Err(format!("no shard {shard}"));
    };
    shared.metrics.count_shard(shard);
    shared.metrics.enter_shard(shard);
    let mut batch = lsm::WriteBatch::new();
    batch.delete(key);
    let result = db.write(batch, lsm::WriteOptions { sync });
    shared.metrics.leave_shard(shard);
    match result {
        Ok(()) => {
            wait_repl(shared, shard, db, sync);
            Response::Ok
        }
        Err(e) => storage_err(&e),
    }
}

/// Scans shards in range order, concatenating results — ranges are
/// contiguous per shard, so the concatenation is globally sorted.
///
/// Two caps bound the reply: the caller's pair `limit` and a byte budget
/// that keeps the encoded frame under [`proto::MAX_FRAME`] even when
/// every pair carries a large value (each pair costs its key + value +
/// [`lsm::SCAN_PAIR_OVERHEAD`] bytes of budget, which over-covers the
/// 8 bytes of wire framing per pair). A scan cut short by either cap
/// returns [`Response::PairsPartial`]; the client resumes past the last
/// returned key, or falls back to a point read when even a single pair
/// exceeded the budget.
///
/// Consistency: a snapshot of *every* shard in range is pinned up front,
/// before the first shard is read, so slow shard N cannot serve data
/// minutes newer than shard 0's slice. As with [`do_batch`], the
/// guarantee is still per shard: the pins are taken one after another,
/// so a write racing the pin loop may appear in a later shard's slice
/// while missing from an earlier one. A globally consistent multi-shard
/// scan would need a cross-shard sequence barrier the engine does not
/// (yet) provide; the protocol deliberately does not promise it.
fn do_scan(shared: &Shared, start: &[u8], end: Option<&[u8]>, limit: u32) -> Response {
    let limit = limit as usize;
    // Headroom under MAX_FRAME for the response tag, pair count, and the
    // slack between SCAN_PAIR_OVERHEAD and the real framing bytes.
    let byte_budget = proto::MAX_FRAME - 4096;
    let Some((first, last)) = shared.router.shards_for_range(start, end) else {
        return Response::Pairs(Vec::new());
    };
    // Pin every shard's snapshot before reading any of them.
    let mut snaps = Vec::new();
    for shard in first..=last {
        let Some(db) = shared.shards.get(shard) else {
            break;
        };
        snaps.push((shard, db, db.snapshot()));
    }
    let mut pairs: Vec<(Vec<u8>, Vec<u8>)> = Vec::new();
    let mut used = 0usize;
    for (shard, db, snap) in &snaps {
        shared.metrics.count_shard(*shard);
        shared.metrics.enter_shard(*shard);
        let result = db.scan_with(
            lsm::ReadOptions {
                snapshot: Some(snap.sequence),
            },
            start,
            end,
            limit - pairs.len(),
            byte_budget - used,
        );
        shared.metrics.leave_shard(*shard);
        match result {
            Ok(outcome) => {
                for (k, v) in &outcome.pairs {
                    used += k.len() + v.len() + lsm::SCAN_PAIR_OVERHEAD;
                }
                pairs.extend(outcome.pairs);
                if !outcome.complete {
                    return Response::PairsPartial(pairs);
                }
            }
            Err(e) => return storage_err(&e),
        }
    }
    Response::Pairs(pairs)
}

/// Splits the ops by owning shard (preserving per-shard order) and
/// commits one `lsm::WriteBatch` per shard. Atomicity is therefore
/// *per shard*, not global — a cross-shard batch that fails part-way
/// reports an error but earlier shards' sub-batches stay committed.
/// [`do_scan`] mirrors this contract on the read side: per-shard
/// snapshots, no cross-shard point-in-time guarantee.
fn do_batch(shared: &Shared, ops: Vec<proto::BatchOp>, sync: bool) -> Response {
    if let Some(resp) = reject_replica_write(shared) {
        return resp;
    }
    let mut per_shard: Vec<Option<lsm::WriteBatch>> = Vec::new();
    per_shard.resize_with(shared.shards.len(), || None);
    for op in &ops {
        let key = match op {
            proto::BatchOp::Put { key, .. } => key,
            proto::BatchOp::Delete { key } => key,
        };
        let shard = shared.router.shard_for(key);
        let Some(slot) = per_shard.get_mut(shard) else {
            return Response::Err(format!("no shard {shard}"));
        };
        let batch = slot.get_or_insert_with(lsm::WriteBatch::new);
        match op {
            proto::BatchOp::Put { key, value } => batch.put(key, value),
            proto::BatchOp::Delete { key } => batch.delete(key),
        }
    }
    for (shard, slot) in per_shard.into_iter().enumerate() {
        let Some(batch) = slot else { continue };
        let Some(db) = shared.shards.get(shard) else {
            continue;
        };
        shared.metrics.count_shard(shard);
        shared.metrics.enter_shard(shard);
        let result = db.write(batch, lsm::WriteOptions { sync });
        shared.metrics.leave_shard(shard);
        if let Err(e) = result {
            return storage_err(&e);
        }
        wait_repl(shared, shard, db, sync);
    }
    Response::Ok
}

/// Records a replica's durable progress and advances the shard's WAL
/// retention floor to the minimum acknowledged segment across replicas.
fn do_repl_ack(shared: &Shared, replica: u64, shard: usize, segment: u64, seq: u64) -> Response {
    let Some(db) = shared.shards.get(shard) else {
        return Response::Err(format!("no shard {shard}"));
    };
    match shared.repl.record_ack(replica, shard, segment, seq) {
        Some(floor) => {
            db.set_wal_retention_floor(floor);
            Response::Ok
        }
        // An id the leader never issued (or already unregistered): the
        // replica's feed is gone, so its acks mean nothing.
        None => Response::Err(format!("unknown replica id {replica}")),
    }
}

/// Promotes this node to leader. Idempotent: promoting a leader is `Ok`.
/// On an actual role flip the apply loop stops at its next poll and the
/// WAL retention floors are pinned so replicas of *this* node (re-pointed
/// by the operator) can bootstrap from the new leader's history.
fn do_promote(shared: &Shared) -> Response {
    if shared.repl.promote() {
        for db in &shared.shards {
            if let Ok(cursor) = db.repl_start_cursor() {
                db.set_wal_retention_floor(cursor.segment);
            }
        }
    }
    Response::Ok
}

/// How long a token-gated read waits for the apply loop before answering
/// [`Response::Lagging`].
const RYW_WAIT: Duration = Duration::from_secs(2);

/// Read-your-writes on a replica: serve the key only once the owning
/// shard has applied past the session token taken from the leader.
fn do_get_ryw(shared: &Shared, key: &[u8], min_seqs: &[u64]) -> Response {
    let shard = shared.router.shard_for(key);
    let Some(db) = shared.shards.get(shard) else {
        return Response::Err(format!("no shard {shard}"));
    };
    let want = min_seqs.get(shard).copied().unwrap_or(0);
    let deadline = Instant::now() + RYW_WAIT;
    loop {
        let applied = db.visible_sequence();
        if applied >= want {
            break;
        }
        if Instant::now() >= deadline {
            return Response::Lagging { applied };
        }
        std::thread::sleep(Duration::from_millis(2));
    }
    shared.metrics.count_shard(shard);
    shared.metrics.enter_shard(shard);
    let result = db.get(key);
    shared.metrics.leave_shard(shard);
    match result {
        Ok(Some(v)) => Response::Value(v),
        Ok(None) => Response::NotFound,
        Err(e) => storage_err(&e),
    }
}

/// Graceful shutdown: stop accepting, drain in-flight data-plane work,
/// flush the replication stream to every registered replica, then wake
/// whoever parked in [`ServerHandle::wait_shutdown`]. The `Ok` response
/// is sent *after* all of that, so a client that waited for it knows the
/// acknowledged state reached the replicas.
async fn do_shutdown(shared: &Arc<Shared>) -> Response {
    shared.shutdown.store(true, Ordering::SeqCst);
    // Unblock the accept loop so no new connections slip in.
    if let Some(addr) = shared.listen_addr.get() {
        let _ = std::net::TcpStream::connect(addr);
    }
    let s = Arc::clone(shared);
    match tokio::task::spawn_blocking(move || drain_and_stop(&s)).await {
        Ok(()) => Response::Ok,
        Err(e) => Response::Err(format!("shutdown task failed: {e}")),
    }
}

/// The blocking tail of [`do_shutdown`]: bounded drain, bounded
/// replication flush, then stop the feeds and signal the binary.
fn drain_and_stop(shared: &Shared) {
    // Drain in-flight shard requests (this request itself never enters a
    // shard gauge, so zero is reachable). Bounded: a stuck write cannot
    // wedge shutdown forever.
    let drain_deadline = Instant::now() + Duration::from_secs(5);
    loop {
        let busy: u64 = shared
            .metrics
            .in_flight
            .iter()
            .map(|n| n.load(Ordering::Relaxed))
            .sum();
        if busy == 0 || Instant::now() >= drain_deadline {
            break;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    // Leader with live replicas: push everything written so far and wait
    // (bounded) for acks, so a graceful handover loses nothing.
    if !shared.repl.is_replica() && shared.repl.has_replicas() {
        for db in &shared.shards {
            let _ = db.repl_flush();
        }
        let ack_deadline = Instant::now() + Duration::from_secs(10);
        for (shard, db) in shared.shards.iter().enumerate() {
            let left = ack_deadline.saturating_duration_since(Instant::now());
            if !shared
                .repl
                .wait_replicated(shard, db.visible_sequence(), left)
            {
                shared.repl.metrics.ack_wait_timeouts.inc();
            }
        }
    }
    shared.repl.request_stop();
    shared.repl.signal_shutdown();
}

fn do_stats(shared: &Shared, json: bool) -> Response {
    shared.metrics.refresh_skew();
    // Refresh the per-level gauges on every shard so the export carries
    // live file counts (shards share the registry; last writer wins,
    // which for the aggregate export is an acceptable approximation).
    for db in &shared.shards {
        let _ = db.property("lsm.metrics");
    }
    let registry = &shared.obs.registry;
    Response::Stats(if json {
        registry.export_json()
    } else {
        registry.export_text()
    })
}
