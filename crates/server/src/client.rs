//! Blocking client for the wire protocol.
//!
//! One [`KvClient`] wraps one TCP connection. Responses arrive in
//! request order, so [`KvClient::pipeline`] can send a burst of frames
//! and then collect the matching responses — the server-side concurrency
//! model the load generator leans on.

use std::io::{Read, Write};
use std::net::{TcpStream, ToSocketAddrs};
use std::time::Duration;

use crate::proto::{self, BatchOp, ProtoError, Request, Response};

/// Client-side failure: transport or protocol.
#[derive(Debug)]
pub enum ClientError {
    /// Socket-level failure.
    Io(std::io::Error),
    /// The server sent bytes that do not decode.
    Proto(ProtoError),
    /// The server reported a protocol violation on our side.
    ServerProto(String),
    /// The server answered, but with a storage error or a response kind
    /// the call did not expect.
    Rejected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Proto(e) => write!(f, "protocol: {e}"),
            ClientError::ServerProto(msg) => write!(f, "protocol (server-reported): {msg}"),
            ClientError::Rejected(msg) => write!(f, "rejected by server: {msg}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Io(e)
    }
}

impl From<ProtoError> for ClientError {
    fn from(e: ProtoError) -> Self {
        ClientError::Proto(e)
    }
}

/// Client result alias.
pub type Result<T> = std::result::Result<T, ClientError>;

/// A connected client.
pub struct KvClient {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl KvClient {
    /// Connects to a running server.
    pub fn connect<A: ToSocketAddrs>(addr: A) -> Result<KvClient> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true)?;
        Ok(KvClient {
            stream,
            buf: Vec::new(),
        })
    }

    /// Connects with bounded exponential backoff (10ms doubling to 1s
    /// between attempts) for up to `total` wall time — the tool-side
    /// answer to a server that is restarting or not yet listening.
    pub fn connect_with_backoff<A: ToSocketAddrs + Clone>(
        addr: A,
        total: Duration,
    ) -> Result<KvClient> {
        let deadline = std::time::Instant::now() + total;
        let mut pause = Duration::from_millis(10);
        loop {
            match KvClient::connect(addr.clone()) {
                Ok(client) => return Ok(client),
                Err(e) => {
                    if std::time::Instant::now() + pause >= deadline {
                        return Err(e);
                    }
                    std::thread::sleep(pause);
                    pause = (pause * 2).min(Duration::from_secs(1));
                }
            }
        }
    }

    /// Socket read timeout for every subsequent response wait.
    pub fn set_timeout(&self, dur: Option<Duration>) -> Result<()> {
        self.stream.set_read_timeout(dur)?;
        Ok(())
    }

    /// Sends one request and waits for its response.
    pub fn request(&mut self, req: &Request) -> Result<Response> {
        self.buf.clear();
        proto::encode_request(&mut self.buf, req);
        self.stream.write_all(&self.buf)?;
        self.read_response()
    }

    /// Sends all requests back-to-back, then reads the matching
    /// responses in order (request pipelining: one round trip's latency
    /// amortized over the burst).
    pub fn pipeline(&mut self, reqs: &[Request]) -> Result<Vec<Response>> {
        self.buf.clear();
        for req in reqs {
            proto::encode_request(&mut self.buf, req);
        }
        self.stream.write_all(&self.buf)?;
        let mut out = Vec::with_capacity(reqs.len());
        for _ in reqs {
            out.push(self.read_response()?);
        }
        Ok(out)
    }

    fn read_response(&mut self) -> Result<Response> {
        let mut prefix = [0u8; 4];
        self.stream.read_exact(&mut prefix)?;
        let len = proto::frame_len(prefix)?;
        let mut body = vec![0u8; len];
        self.stream.read_exact(&mut body)?;
        Ok(proto::decode_response(&body)?)
    }

    /// Point lookup.
    pub fn get(&mut self, key: &[u8]) -> Result<Option<Vec<u8>>> {
        match self.request(&Request::Get { key: key.to_vec() })? {
            Response::Value(v) => Ok(Some(v)),
            Response::NotFound => Ok(None),
            other => Err(unexpected(other)),
        }
    }

    /// Write; `sync` demands a durable ack.
    pub fn put(&mut self, key: &[u8], value: &[u8], sync: bool) -> Result<()> {
        match self.request(&Request::Put {
            key: key.to_vec(),
            value: value.to_vec(),
            sync,
        })? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Delete; `sync` demands a durable ack.
    pub fn delete(&mut self, key: &[u8], sync: bool) -> Result<()> {
        match self.request(&Request::Delete {
            key: key.to_vec(),
            sync,
        })? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Range scan over `[start, end)`, at most `limit` pairs. A reply the
    /// server truncated (pair limit or frame budget) is returned as-is;
    /// use [`KvClient::scan_partial`] to learn whether truncation
    /// happened and resume past the last returned key.
    pub fn scan(
        &mut self,
        start: &[u8],
        end: Option<&[u8]>,
        limit: u32,
    ) -> Result<Vec<(Vec<u8>, Vec<u8>)>> {
        Ok(self.scan_partial(start, end, limit)?.0)
    }

    /// Range scan that also reports completeness: `(pairs, complete)`.
    /// `complete == false` means the server stopped early — at the pair
    /// `limit` or at its response-frame byte budget (large values can
    /// fill a frame in a handful of pairs) — and more data may exist.
    /// Resume with `start` just past the last returned key; an empty,
    /// incomplete reply means the very next pair alone exceeds the frame
    /// budget, so fetch that key with [`KvClient::get`] instead.
    #[allow(clippy::type_complexity)]
    pub fn scan_partial(
        &mut self,
        start: &[u8],
        end: Option<&[u8]>,
        limit: u32,
    ) -> Result<(Vec<(Vec<u8>, Vec<u8>)>, bool)> {
        match self.request(&Request::Scan {
            start: start.to_vec(),
            end: end.map(<[u8]>::to_vec),
            limit,
        })? {
            Response::Pairs(pairs) => Ok((pairs, true)),
            Response::PairsPartial(pairs) => Ok((pairs, false)),
            other => Err(unexpected(other)),
        }
    }

    /// Multi-op write (atomic per shard).
    pub fn write_batch(&mut self, ops: Vec<BatchOp>, sync: bool) -> Result<()> {
        match self.request(&Request::WriteBatch { ops, sync })? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Server-side metrics export (text or JSON).
    pub fn stats(&mut self, json: bool) -> Result<String> {
        match self.request(&Request::Stats { json })? {
            Response::Stats(s) => Ok(s),
            other => Err(unexpected(other)),
        }
    }

    /// Acknowledges replicated progress to the leader: replica `replica`
    /// durably applied shard `shard` through `(segment, offset)` /
    /// sequence `seq`.
    pub fn repl_ack(
        &mut self,
        replica: u64,
        shard: u32,
        segment: u64,
        offset: u64,
        seq: u64,
    ) -> Result<()> {
        match self.request(&Request::ReplAck {
            replica,
            shard,
            segment,
            offset,
            seq,
        })? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Per-shard visible sequences: the read-your-writes session token a
    /// client takes from the leader and carries to replica reads.
    pub fn get_seq(&mut self) -> Result<Vec<u64>> {
        match self.request(&Request::GetSeq)? {
            Response::SeqTokens(seqs) => Ok(seqs),
            other => Err(unexpected(other)),
        }
    }

    /// Token-gated point lookup on a replica. `Ok(Err(applied))` means
    /// the replica is lagging behind the token: its applied sequence is
    /// `applied`; retry here or read from the leader.
    #[allow(clippy::type_complexity)]
    pub fn get_ryw(
        &mut self,
        key: &[u8],
        min_seqs: &[u64],
    ) -> Result<std::result::Result<Option<Vec<u8>>, u64>> {
        match self.request(&Request::GetRyw {
            key: key.to_vec(),
            min_seqs: min_seqs.to_vec(),
        })? {
            Response::Value(v) => Ok(Ok(Some(v))),
            Response::NotFound => Ok(Ok(None)),
            Response::Lagging { applied } => Ok(Err(applied)),
            other => Err(unexpected(other)),
        }
    }

    /// Promotes the connected replica to leader (idempotent).
    pub fn promote(&mut self) -> Result<()> {
        match self.request(&Request::Promote)? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }

    /// Asks the server to shut down gracefully; `Ok` arrives only after
    /// the drain and replication flush completed.
    pub fn shutdown_server(&mut self) -> Result<()> {
        match self.request(&Request::Shutdown)? {
            Response::Ok => Ok(()),
            other => Err(unexpected(other)),
        }
    }
}

fn unexpected(resp: Response) -> ClientError {
    match resp {
        Response::ProtoErr(msg) => ClientError::ServerProto(msg),
        Response::Err(msg) => ClientError::Rejected(msg),
        other => ClientError::Rejected(format!("unexpected response {other:?}")),
    }
}
