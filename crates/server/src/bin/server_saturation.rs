//! `server_saturation` — throughput + p99 vs. connection count, at
//! K=1 and K=4 engine slots, appended to `BENCH_PR6.json`.
//!
//! Runs an in-process 4-shard server per engine configuration (fresh
//! store directories each time), drives YCSB-A through the real TCP
//! stack at each connection count, and appends one labelled JSON row:
//!
//! ```sh
//! cargo run --release -p server --bin server_saturation -- \
//!     --label pr6 --out BENCH_PR6.json
//! ```

use std::time::SystemTime;

use server::load::{self, LoadConfig};
use server::{KvServer, ServerConfig};

struct Args {
    label: String,
    out: String,
    seconds: u64,
    connections: Vec<usize>,
    engines: Vec<usize>,
    records: u64,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        label: "saturation".into(),
        out: "BENCH_PR6.json".into(),
        seconds: 3,
        connections: vec![8, 32, 64],
        engines: vec![1, 4],
        records: 20_000,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let (flag, value) = match args[i].split_once('=') {
            Some((f, v)) => (f.to_string(), v.to_string()),
            None => {
                let f = args[i].clone();
                i += 1;
                let v = args
                    .get(i)
                    .cloned()
                    .ok_or(format!("missing value for {f}"))?;
                (f, v)
            }
        };
        match flag.as_str() {
            "--label" => out.label = value,
            "--out" => out.out = value,
            "--seconds" => out.seconds = value.parse().map_err(|e| format!("--seconds: {e}"))?,
            "--records" => out.records = value.parse().map_err(|e| format!("--records: {e}"))?,
            "--connections" => {
                out.connections = value
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| format!("--connections: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            "--engines" => {
                out.engines = value
                    .split(',')
                    .map(|s| s.trim().parse().map_err(|e| format!("--engines: {e}")))
                    .collect::<Result<_, _>>()?;
            }
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    Ok(out)
}

/// One (engines, connections) measurement.
struct Point {
    engines: usize,
    connections: usize,
    throughput_ops_s: u64,
    p50_us: u64,
    p99_us: u64,
    protocol_errors: u64,
}

impl Point {
    fn json(&self) -> String {
        format!(
            "{{\"engines\": {}, \"connections\": {}, \"throughput_ops_s\": {}, \
             \"p50_us\": {}, \"p99_us\": {}, \"protocol_errors\": {}}}",
            self.engines,
            self.connections,
            self.throughput_ops_s,
            self.p50_us,
            self.p99_us,
            self.protocol_errors
        )
    }
}

fn measure(engines: usize, connections: usize, args: &Args) -> Result<Point, String> {
    let root = std::env::temp_dir().join(format!(
        "server-saturation-{}-k{engines}-c{connections}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&root);
    let kv = KvServer::open(ServerConfig {
        shards: 4,
        root: root.clone(),
        engine_slots: engines,
        // Small buffers so the run actually compacts under load and the
        // engine-slot count matters within a few seconds.
        write_buffer_size: 256 << 10,
        max_file_size: 128 << 10,
        // Pre-split for the dense YCSB record ids so the load actually
        // spreads across all 4 shards.
        key_space: Some(args.records),
        ..Default::default()
    })
    .map_err(|e| format!("open: {e}"))?;
    let handle = kv.start("127.0.0.1:0").map_err(|e| format!("start: {e}"))?;

    let report = load::run(&LoadConfig {
        addr: handle.addr().to_string(),
        connections,
        records: args.records,
        seconds: Some(args.seconds),
        seed: 42,
        ..Default::default()
    })
    .map_err(|e| format!("load: {e}"))?;

    handle.quiesce();
    handle.shutdown();
    let _ = std::fs::remove_dir_all(&root);
    Ok(Point {
        engines,
        connections,
        throughput_ops_s: report.throughput_ops_s(),
        p50_us: report.latency.p50,
        p99_us: report.latency.p99,
        protocol_errors: report.protocol_errors,
    })
}

/// Appends `snapshot` to the JSON array in `path` (creating it if
/// absent) — the same trajectory-file convention as `bench_snapshot`.
fn append_snapshot(path: &str, snapshot: &str) -> std::io::Result<()> {
    let body = match std::fs::read_to_string(path) {
        Ok(existing) => {
            let trimmed = existing.trim_end();
            let without_close = trimmed
                .strip_suffix(']')
                .ok_or_else(|| std::io::Error::other(format!("{path} is not a JSON array")))?
                .trim_end();
            let sep = if without_close.ends_with('[') {
                ""
            } else {
                ","
            };
            format!("{without_close}{sep}\n{snapshot}\n]\n")
        }
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            format!("[\n{snapshot}\n]\n")
        }
        Err(e) => return Err(e),
    };
    std::fs::write(path, body)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    let mut points = Vec::new();
    for &engines in &args.engines {
        for &connections in &args.connections {
            eprintln!("measuring K={engines} connections={connections} ...");
            match measure(engines, connections, &args) {
                Ok(p) => {
                    eprintln!(
                        "  {} ops/s p50={}us p99={}us proto_errors={}",
                        p.throughput_ops_s, p.p50_us, p.p99_us, p.protocol_errors
                    );
                    points.push(p);
                }
                Err(e) => {
                    eprintln!("error: K={engines} c={connections}: {e}");
                    std::process::exit(1);
                }
            }
        }
    }
    let unix_time = SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or(0, |d| d.as_secs());
    let rows: Vec<String> = points.iter().map(Point::json).collect();
    let snapshot = format!(
        "  {{\"label\": \"{}\", \"unix_time\": {unix_time}, \"workload\": \"ycsb_a\", \
         \"shards\": 4, \"seconds_per_point\": {}, \"saturation\": [{}]}}",
        args.label,
        args.seconds,
        rows.join(", ")
    );
    if let Err(e) = append_snapshot(&args.out, &snapshot) {
        eprintln!("error writing {}: {e}", args.out);
        std::process::exit(1);
    }
    println!("appended saturation row '{}' to {}", args.label, args.out);
    if points.iter().any(|p| p.protocol_errors > 0) {
        eprintln!("FAIL: protocol errors observed");
        std::process::exit(1);
    }
}
