//! `load_gen` — replay YCSB mixes against a running `kv-server`.
//!
//! ```sh
//! load_gen --addr 127.0.0.1:7878 --workload a --connections 64 --seconds 10
//! ```
//!
//! Prints one greppable summary line (see `LoadReport::summary_line`)
//! with throughput and client-observed p50/p95/p99. Exits nonzero when
//! any protocol error occurred — the CI smoke job's gate.

use server::load::{self, LoadConfig};

fn parse_args() -> Result<LoadConfig, String> {
    let mut cfg = LoadConfig {
        addr: "127.0.0.1:7878".into(),
        ..Default::default()
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--no-preload" => {
                cfg.preload = false;
                i += 1;
                continue;
            }
            "--sync" => {
                cfg.sync = true;
                i += 1;
                continue;
            }
            _ => {}
        }
        let (flag, value) = match args[i].split_once('=') {
            Some((f, v)) => (f.to_string(), v.to_string()),
            None => {
                let f = args[i].clone();
                i += 1;
                let v = args
                    .get(i)
                    .cloned()
                    .ok_or(format!("missing value for {f}"))?;
                (f, v)
            }
        };
        match flag.as_str() {
            "--addr" => cfg.addr = value,
            "--workload" => {
                cfg.workload = load::parse_workload(&value)
                    .ok_or(format!("unknown workload {value} (load, a-f)"))?;
            }
            "--connections" => {
                cfg.connections = value.parse().map_err(|e| format!("--connections: {e}"))?;
            }
            "--records" => cfg.records = value.parse().map_err(|e| format!("--records: {e}"))?,
            "--seconds" => {
                cfg.seconds = Some(value.parse().map_err(|e| format!("--seconds: {e}"))?);
            }
            "--ops" => {
                cfg.ops_per_connection = Some(value.parse().map_err(|e| format!("--ops: {e}"))?);
                cfg.seconds = None;
            }
            "--value-len" => {
                cfg.value_len = value.parse().map_err(|e| format!("--value-len: {e}"))?;
            }
            "--key-len" => cfg.key_len = value.parse().map_err(|e| format!("--key-len: {e}"))?,
            "--seed" => cfg.seed = value.parse().map_err(|e| format!("--seed: {e}"))?,
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    if cfg.seconds.is_none() && cfg.ops_per_connection.is_none() {
        cfg.seconds = Some(10);
    }
    Ok(cfg)
}

fn main() {
    let cfg = match parse_args() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: load_gen --addr HOST:PORT [--workload load|a-f] [--connections N] \
                 [--records N] [--seconds N | --ops PER_CONN] [--value-len B] [--key-len B] \
                 [--seed N] [--no-preload] [--sync]"
            );
            std::process::exit(2);
        }
    };
    eprintln!(
        "load_gen: YCSB-{} against {} at {} connections ({})",
        cfg.workload.name(),
        cfg.addr,
        cfg.connections,
        match (cfg.seconds, cfg.ops_per_connection) {
            (Some(s), _) => format!("{s}s"),
            (None, Some(o)) => format!("{o} ops/conn"),
            (None, None) => "unbounded".into(),
        }
    );
    let report = match load::run(&cfg) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("error: load run failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "{}",
        report.summary_line(&format!(
            "ycsb_{}_c{}",
            cfg.workload.name().to_ascii_lowercase(),
            cfg.connections
        ))
    );
    if report.protocol_errors > 0 {
        eprintln!("FAIL: {} protocol errors", report.protocol_errors);
        std::process::exit(1);
    }
}
