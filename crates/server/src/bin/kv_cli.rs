//! `kv-cli` — one-shot client operations against a running `kv-server`.
//!
//! ```sh
//! kv-cli --addr 127.0.0.1:7878 put mykey myvalue
//! kv-cli --addr 127.0.0.1:7878 get mykey
//! kv-cli --addr 127.0.0.1:7878 scan 0000 9999 --limit 10
//! kv-cli --addr 127.0.0.1:7878 stats --json
//! ```
//!
//! Keys and values are taken as UTF-8 from the command line. Exit code
//! 0 on success (including `get` of a missing key, which prints
//! `(not found)`), 1 on any error.

use server::KvClient;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => {}
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: kv-cli --addr HOST:PORT <get KEY | put KEY VALUE [--sync] | \
                 del KEY [--sync] | scan START [END] [--limit N] | stats [--json] | \
                 seq | promote | shutdown>"
            );
            std::process::exit(1);
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut addr = "127.0.0.1:7878".to_string();
    let mut rest: Vec<&str> = Vec::new();
    let mut sync = false;
    let mut json = false;
    let mut limit = 100u32;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--addr" => {
                i += 1;
                addr = args.get(i).cloned().ok_or("missing value for --addr")?;
            }
            "--sync" => sync = true,
            "--json" => json = true,
            "--limit" => {
                i += 1;
                limit = args
                    .get(i)
                    .ok_or("missing value for --limit")?
                    .parse()
                    .map_err(|e| format!("--limit: {e}"))?;
            }
            other => rest.push(other),
        }
        i += 1;
    }

    // Bounded-backoff connect: a server that is restarting (rolling
    // upgrade, failover promotion) comes back within a few seconds, and
    // a one-shot tool should ride that out rather than fail its script.
    let mut client = KvClient::connect_with_backoff(&addr, std::time::Duration::from_secs(5))
        .map_err(|e| format!("connect {addr}: {e}"))?;
    match rest.as_slice() {
        ["get", key] => match client.get(key.as_bytes()).map_err(|e| e.to_string())? {
            Some(v) => println!("{}", String::from_utf8_lossy(&v)),
            None => println!("(not found)"),
        },
        ["put", key, value] => client
            .put(key.as_bytes(), value.as_bytes(), sync)
            .map_err(|e| e.to_string())?,
        ["del", key] => client
            .delete(key.as_bytes(), sync)
            .map_err(|e| e.to_string())?,
        ["scan", start] => print_pairs(
            client
                .scan(start.as_bytes(), None, limit)
                .map_err(|e| e.to_string())?,
        ),
        ["scan", start, end] => print_pairs(
            client
                .scan(start.as_bytes(), Some(end.as_bytes()), limit)
                .map_err(|e| e.to_string())?,
        ),
        ["stats"] => println!("{}", client.stats(json).map_err(|e| e.to_string())?),
        ["promote"] => {
            client.promote().map_err(|e| e.to_string())?;
            println!("promoted");
        }
        ["shutdown"] => {
            client.shutdown_server().map_err(|e| e.to_string())?;
            println!("shut down");
        }
        ["seq"] => {
            let seqs = client.get_seq().map_err(|e| e.to_string())?;
            for (shard, seq) in seqs.iter().enumerate() {
                println!("shard{shard}\t{seq}");
            }
        }
        _ => return Err("unrecognized command".into()),
    }
    Ok(())
}

fn print_pairs(pairs: Vec<(Vec<u8>, Vec<u8>)>) {
    for (k, v) in &pairs {
        println!(
            "{}\t{}",
            String::from_utf8_lossy(k),
            String::from_utf8_lossy(v)
        );
    }
    eprintln!("({} pairs)", pairs.len());
}
