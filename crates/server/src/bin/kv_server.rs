//! `kv-server` — serve N range-partitioned shards over TCP.
//!
//! ```sh
//! kv-server --listen 127.0.0.1:7878 --shards 4 --engines 2 --root ./kv-data
//! ```
//!
//! Prints one `listening on <addr> ...` line on stdout once the socket
//! is bound (harnesses parse it to learn the OS-assigned port when
//! `--listen` ends in `:0`), then serves until killed. `--sync` makes
//! every acknowledged write WAL-synced — the power-cut harness runs
//! with it so `SIGKILL` cannot lose acked writes.

use std::io::Write as _;

use server::{KvServer, ServerConfig};

struct Args {
    listen: String,
    config: ServerConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut out = Args {
        listen: "127.0.0.1:7878".into(),
        config: ServerConfig::default(),
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        // Flags without a value.
        if args[i] == "--sync" {
            out.config.sync_writes = true;
            i += 1;
            continue;
        }
        let (flag, value) = match args[i].split_once('=') {
            Some((f, v)) => (f.to_string(), v.to_string()),
            None => {
                let f = args[i].clone();
                i += 1;
                let v = args
                    .get(i)
                    .cloned()
                    .ok_or(format!("missing value for {f}"))?;
                (f, v)
            }
        };
        match flag.as_str() {
            "--listen" => out.listen = value,
            "--root" => out.config.root = value.into(),
            "--shards" => {
                out.config.shards = value.parse().map_err(|e| format!("--shards: {e}"))?;
            }
            "--engines" => {
                out.config.engine_slots = value.parse().map_err(|e| format!("--engines: {e}"))?;
            }
            "--write-buffer" => {
                out.config.write_buffer_size =
                    value.parse().map_err(|e| format!("--write-buffer: {e}"))?;
            }
            "--max-file" => {
                out.config.max_file_size = value.parse().map_err(|e| format!("--max-file: {e}"))?;
            }
            "--key-len" => {
                out.config.key_len = value.parse().map_err(|e| format!("--key-len: {e}"))?;
            }
            // Pre-split for a dense record-id workload: shard boundaries
            // split [0, N) instead of the full keyspace. Pass the same N
            // as load_gen's --records.
            "--records" => {
                out.config.key_space = Some(value.parse().map_err(|e| format!("--records: {e}"))?);
            }
            // Key-value separation threshold (bytes); values at or above
            // it go to each shard's value log.
            "--vlog-threshold" => {
                out.config.value_log_threshold = Some(
                    value
                        .parse()
                        .map_err(|e| format!("--vlog-threshold: {e}"))?,
                );
            }
            // Run as a replica of the leader at ADDR: reject writes,
            // stream and apply its WAL until promoted.
            "--replica-of" => out.config.replica_of = Some(value),
            other => return Err(format!("unknown flag {other}")),
        }
        i += 1;
    }
    Ok(out)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: kv-server [--listen ADDR] [--root DIR] [--shards N] [--engines K] \
                 [--sync] [--write-buffer BYTES] [--max-file BYTES] [--key-len N] \
                 [--records N] [--vlog-threshold BYTES] [--replica-of ADDR]"
            );
            std::process::exit(2);
        }
    };
    let shards = args.config.shards;
    let engines = args.config.engine_slots;
    let sync = args.config.sync_writes;
    let role = match &args.config.replica_of {
        Some(leader) => format!("replica-of={leader}"),
        None => "leader".to_string(),
    };
    let kv = match KvServer::open(args.config) {
        Ok(kv) => kv,
        Err(e) => {
            eprintln!("error: opening shards failed: {e}");
            std::process::exit(1);
        }
    };
    let handle = match kv.start(&args.listen) {
        Ok(h) => h,
        Err(e) => {
            eprintln!("error: binding {} failed: {e}", args.listen);
            std::process::exit(1);
        }
    };
    println!(
        "listening on {} shards={shards} engines={engines} sync={sync} role={role}",
        handle.addr()
    );
    let _ = std::io::stdout().flush();
    // Serve until killed — or until a graceful `Shutdown` request
    // finishes its drain and replication flush.
    handle.wait_shutdown();
    handle.quiesce();
    // Give the shutdown request's `Ok` response a moment to flush to the
    // client before the process (and its sockets) go away.
    std::thread::sleep(std::time::Duration::from_millis(100));
}
