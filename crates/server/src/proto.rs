//! Length-prefixed binary wire protocol.
//!
//! Every message — request or response — is one *frame*:
//!
//! ```text
//! +----------------+----------------------+
//! | len: u32 LE    | body: len bytes      |
//! +----------------+----------------------+
//! ```
//!
//! `len` counts the body only and is capped at [`MAX_FRAME`]; anything
//! larger is rejected before allocation, so a hostile peer cannot make
//! the server reserve gigabytes from four bytes of input.
//!
//! Every body starts with a one-byte protocol version
//! ([`PROTO_VERSION`]): mixed-version nodes fail loudly with
//! [`ProtoError::VersionMismatch`] on the first frame instead of
//! misparsing each other's fields. Request bodies continue with an opcode
//! byte; response bodies with a tag byte. Variable-length fields are
//! `u32 LE` length + bytes. Requests on one connection are answered
//! strictly in order, which is what lets clients pipeline: send N frames
//! back-to-back, then read N responses.
//!
//! The codec is pure and panic-free on arbitrary input (it is inside the
//! xtask no-panics lint scope): decode failures return [`ProtoError`],
//! never a crash — the property tests feed truncated, oversized and
//! garbage frames to hold that line.

use std::fmt;

/// Largest accepted frame body (16 MiB) — comfortably above the largest
/// legitimate value/batch, far below an allocation attack.
pub const MAX_FRAME: usize = 16 << 20;

/// Wire protocol version, the first byte of every frame body. Bumped on
/// any incompatible layout change; a peer speaking another version is
/// answered with a [`Response::ProtoErr`] and the connection closes.
pub const PROTO_VERSION: u8 = 1;

/// Request opcodes (first body byte).
pub mod opcode {
    /// Point lookup.
    pub const GET: u8 = 0x01;
    /// Single-key write.
    pub const PUT: u8 = 0x02;
    /// Single-key delete.
    pub const DELETE: u8 = 0x03;
    /// Range scan.
    pub const SCAN: u8 = 0x04;
    /// Atomic-per-shard multi-op write.
    pub const WRITE_BATCH: u8 = 0x05;
    /// Metrics export.
    pub const STATS: u8 = 0x06;
    /// Replication handshake: replica announces resume cursors.
    pub const REPL_HELLO: u8 = 0x07;
    /// Replication progress acknowledgement.
    pub const REPL_ACK: u8 = 0x08;
    /// Promote this replica to leader.
    pub const PROMOTE: u8 = 0x09;
    /// Read the per-shard visible sequences (read-your-writes tokens).
    pub const GET_SEQ: u8 = 0x0A;
    /// Token-gated point lookup on a replica.
    pub const GET_RYW: u8 = 0x0B;
    /// Graceful shutdown: drain, flush the replication stream, exit.
    pub const SHUTDOWN: u8 = 0x0C;
}

/// Response tags (first body byte).
pub mod tag {
    /// Write acknowledged.
    pub const OK: u8 = 0x00;
    /// Key absent.
    pub const NOT_FOUND: u8 = 0x01;
    /// Value payload follows.
    pub const VALUE: u8 = 0x02;
    /// Key/value pair list follows.
    pub const PAIRS: u8 = 0x03;
    /// Stats payload follows.
    pub const STATS: u8 = 0x04;
    /// Key/value pair list follows, truncated server-side (frame budget
    /// or pair limit): more data may exist past the last returned key.
    pub const PAIRS_PARTIAL: u8 = 0x05;
    /// One replication stream record follows.
    pub const REPLICATE: u8 = 0x06;
    /// Per-shard visible sequence list follows.
    pub const SEQ_TOKENS: u8 = 0x07;
    /// Replica cannot serve the requested token yet; its applied
    /// sequence follows.
    pub const LAGGING: u8 = 0x08;
    /// Storage-side error (store stays usable; request failed).
    pub const ERR: u8 = 0x10;
    /// Protocol violation (connection closes after this).
    pub const PROTO_ERR: u8 = 0x11;
}

/// Request flag bits.
pub mod flags {
    /// Sync the WAL before acknowledging this write.
    pub const SYNC: u8 = 0x01;
}

/// One operation inside a [`Request::WriteBatch`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchOp {
    /// Insert or overwrite.
    Put {
        /// User key.
        key: Vec<u8>,
        /// Value bytes.
        value: Vec<u8>,
    },
    /// Remove.
    Delete {
        /// User key.
        key: Vec<u8>,
    },
}

/// A decoded request frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Point lookup.
    Get {
        /// User key.
        key: Vec<u8>,
    },
    /// Single-key write. `sync` forces a WAL sync before the ack.
    Put {
        /// User key.
        key: Vec<u8>,
        /// Value bytes.
        value: Vec<u8>,
        /// Require a WAL sync before acknowledging.
        sync: bool,
    },
    /// Single-key delete.
    Delete {
        /// User key.
        key: Vec<u8>,
        /// Require a WAL sync before acknowledging.
        sync: bool,
    },
    /// Range scan over `[start, end)` (`end` `None` = unbounded),
    /// returning at most `limit` pairs.
    Scan {
        /// Inclusive start key.
        start: Vec<u8>,
        /// Exclusive end key; `None` scans to the keyspace end.
        end: Option<Vec<u8>>,
        /// Pair cap.
        limit: u32,
    },
    /// Multi-op write. Atomic *per shard*: ops are split by the router
    /// and each shard's slice commits as one `lsm::WriteBatch`.
    WriteBatch {
        /// Operations in application order.
        ops: Vec<BatchOp>,
        /// Require a WAL sync before acknowledging.
        sync: bool,
    },
    /// Metrics export; `json` selects the JSON registry export over the
    /// text format.
    Stats {
        /// JSON (`true`) or text (`false`).
        json: bool,
    },
    /// Replication handshake. The connection becomes a one-way feed: the
    /// leader answers [`Response::Ok`], then streams
    /// [`Response::Replicate`] frames resuming from these cursors.
    ReplHello {
        /// Resume cursor per shard, in shard order: `(segment, offset)`.
        cursors: Vec<(u64, u64)>,
    },
    /// Replication progress: the replica durably applied shard `shard`
    /// through WAL position `(segment, offset)` / sequence `seq`. Sent on
    /// a separate control connection so acks never queue behind the feed;
    /// `replica` is the id the handshake's [`Response::SeqTokens`] reply
    /// assigned, tying the two connections together.
    ReplAck {
        /// Replica id from the handshake reply.
        replica: u64,
        /// Shard index.
        shard: u32,
        /// Acknowledged WAL segment.
        segment: u64,
        /// Acknowledged byte offset within the segment.
        offset: u64,
        /// Acknowledged sequence number.
        seq: u64,
    },
    /// Promote this replica to leader: stop applying, start accepting
    /// writes.
    Promote,
    /// Read the per-shard visible sequences — the read-your-writes
    /// session token a client carries to replica reads.
    GetSeq,
    /// Token-gated point lookup on a replica: serve `key` only once the
    /// owning shard's applied sequence reaches its entry in `min_seqs`
    /// (shard order, as returned by [`Request::GetSeq`]).
    GetRyw {
        /// User key.
        key: Vec<u8>,
        /// Minimum applied sequence per shard.
        min_seqs: Vec<u64>,
    },
    /// Graceful shutdown: stop accepting, drain in-flight requests,
    /// flush the replication stream, exit.
    Shutdown,
}

/// A decoded response frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Write acknowledged (durably, when the request carried `sync`).
    Ok,
    /// Key absent.
    NotFound,
    /// Lookup result.
    Value(Vec<u8>),
    /// Scan result, in key order.
    Pairs(Vec<(Vec<u8>, Vec<u8>)>),
    /// Scan result the server cut short — by the pair limit or by the
    /// response-frame byte budget (large values can hit the frame cap
    /// long before the pair limit). Same body layout as [`Pairs`]; the
    /// caller resumes past the last returned key or falls back to point
    /// reads.
    PairsPartial(Vec<(Vec<u8>, Vec<u8>)>),
    /// Stats payload (text or JSON, per the request).
    Stats(String),
    /// One replication stream record: a sequence-stamped `WriteBatch`
    /// encoding lifted off shard `shard`'s WAL.
    Replicate {
        /// Shard index the record belongs to.
        shard: u32,
        /// WAL segment the record came from.
        segment: u64,
        /// Byte offset of the *next* record (the replica's resume
        /// cursor once this record is applied).
        offset: u64,
        /// Last sequence the leader reserved for this record's batch.
        last_seq: u64,
        /// `lsm::WriteBatch` wire bytes with every value re-inlined.
        record: Vec<u8>,
    },
    /// Per-shard visible sequences, in shard order.
    SeqTokens(Vec<u64>),
    /// The replica's applied sequence is below the requested token; the
    /// client retries here or redirects to the leader.
    Lagging {
        /// The shard's current applied sequence.
        applied: u64,
    },
    /// Storage-side failure; the connection stays open.
    Err(String),
    /// Protocol violation; the server closes the connection after
    /// sending this.
    ProtoErr(String),
}

/// Decode failure. Conversion to a wire response uses
/// [`Response::ProtoErr`] with the `Display` text.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProtoError {
    /// Body ended before a field was complete.
    Truncated,
    /// Frame length exceeds [`MAX_FRAME`].
    Oversized,
    /// Unknown request opcode.
    BadOpcode(u8),
    /// Unknown response tag.
    BadTag(u8),
    /// Unknown op kind inside a batch.
    BadBatchOp(u8),
    /// Bytes left over after a complete message.
    TrailingBytes,
    /// A length field points past the end of the body.
    LengthOverflow,
    /// The peer speaks a different protocol version; the payload is the
    /// version byte it sent. The connection closes after reporting it.
    VersionMismatch(u8),
}

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProtoError::Truncated => write!(f, "truncated frame"),
            ProtoError::Oversized => write!(f, "frame exceeds {MAX_FRAME} bytes"),
            ProtoError::BadOpcode(op) => write!(f, "unknown opcode {op:#04x}"),
            ProtoError::BadTag(t) => write!(f, "unknown response tag {t:#04x}"),
            ProtoError::BadBatchOp(k) => write!(f, "unknown batch op kind {k:#04x}"),
            ProtoError::TrailingBytes => write!(f, "trailing bytes after message"),
            ProtoError::LengthOverflow => write!(f, "length field overruns frame"),
            ProtoError::VersionMismatch(v) => write!(
                f,
                "protocol version mismatch: peer sent {v}, this node speaks {PROTO_VERSION}"
            ),
        }
    }
}

impl std::error::Error for ProtoError {}

// ---------------------------------------------------------------- encode

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_bytes(out: &mut Vec<u8>, b: &[u8]) {
    put_u32(out, b.len() as u32);
    out.extend_from_slice(b);
}

/// Appends `body` to `out` as a complete frame (length prefix + body).
pub fn encode_frame(out: &mut Vec<u8>, body: &[u8]) {
    put_u32(out, body.len() as u32);
    out.extend_from_slice(body);
}

/// Encodes `req` (body only, no length prefix) into a fresh buffer.
pub fn encode_request_body(req: &Request) -> Vec<u8> {
    let mut out = vec![PROTO_VERSION];
    match req {
        Request::Get { key } => {
            out.push(opcode::GET);
            put_bytes(&mut out, key);
        }
        Request::Put { key, value, sync } => {
            out.push(opcode::PUT);
            out.push(if *sync { flags::SYNC } else { 0 });
            put_bytes(&mut out, key);
            put_bytes(&mut out, value);
        }
        Request::Delete { key, sync } => {
            out.push(opcode::DELETE);
            out.push(if *sync { flags::SYNC } else { 0 });
            put_bytes(&mut out, key);
        }
        Request::Scan { start, end, limit } => {
            out.push(opcode::SCAN);
            put_bytes(&mut out, start);
            match end {
                Some(end) => {
                    out.push(1);
                    put_bytes(&mut out, end);
                }
                None => out.push(0),
            }
            put_u32(&mut out, *limit);
        }
        Request::WriteBatch { ops, sync } => {
            out.push(opcode::WRITE_BATCH);
            out.push(if *sync { flags::SYNC } else { 0 });
            put_u32(&mut out, ops.len() as u32);
            for op in ops {
                match op {
                    BatchOp::Put { key, value } => {
                        out.push(0);
                        put_bytes(&mut out, key);
                        put_bytes(&mut out, value);
                    }
                    BatchOp::Delete { key } => {
                        out.push(1);
                        put_bytes(&mut out, key);
                    }
                }
            }
        }
        Request::Stats { json } => {
            out.push(opcode::STATS);
            out.push(u8::from(*json));
        }
        Request::ReplHello { cursors } => {
            out.push(opcode::REPL_HELLO);
            put_u32(&mut out, cursors.len() as u32);
            for (segment, offset) in cursors {
                put_u64(&mut out, *segment);
                put_u64(&mut out, *offset);
            }
        }
        Request::ReplAck {
            replica,
            shard,
            segment,
            offset,
            seq,
        } => {
            out.push(opcode::REPL_ACK);
            put_u64(&mut out, *replica);
            put_u32(&mut out, *shard);
            put_u64(&mut out, *segment);
            put_u64(&mut out, *offset);
            put_u64(&mut out, *seq);
        }
        Request::Promote => out.push(opcode::PROMOTE),
        Request::GetSeq => out.push(opcode::GET_SEQ),
        Request::GetRyw { key, min_seqs } => {
            out.push(opcode::GET_RYW);
            put_bytes(&mut out, key);
            put_u32(&mut out, min_seqs.len() as u32);
            for s in min_seqs {
                put_u64(&mut out, *s);
            }
        }
        Request::Shutdown => out.push(opcode::SHUTDOWN),
    }
    out
}

/// Encodes `resp` (body only, no length prefix) into a fresh buffer.
pub fn encode_response_body(resp: &Response) -> Vec<u8> {
    let mut out = vec![PROTO_VERSION];
    match resp {
        Response::Ok => out.push(tag::OK),
        Response::NotFound => out.push(tag::NOT_FOUND),
        Response::Value(v) => {
            out.push(tag::VALUE);
            out.extend_from_slice(v);
        }
        Response::Pairs(pairs) => {
            out.push(tag::PAIRS);
            put_u32(&mut out, pairs.len() as u32);
            for (k, v) in pairs {
                put_bytes(&mut out, k);
                put_bytes(&mut out, v);
            }
        }
        Response::PairsPartial(pairs) => {
            out.push(tag::PAIRS_PARTIAL);
            put_u32(&mut out, pairs.len() as u32);
            for (k, v) in pairs {
                put_bytes(&mut out, k);
                put_bytes(&mut out, v);
            }
        }
        Response::Stats(s) => {
            out.push(tag::STATS);
            out.extend_from_slice(s.as_bytes());
        }
        Response::Replicate {
            shard,
            segment,
            offset,
            last_seq,
            record,
        } => {
            out.push(tag::REPLICATE);
            put_u32(&mut out, *shard);
            put_u64(&mut out, *segment);
            put_u64(&mut out, *offset);
            put_u64(&mut out, *last_seq);
            put_bytes(&mut out, record);
        }
        Response::SeqTokens(seqs) => {
            out.push(tag::SEQ_TOKENS);
            put_u32(&mut out, seqs.len() as u32);
            for s in seqs {
                put_u64(&mut out, *s);
            }
        }
        Response::Lagging { applied } => {
            out.push(tag::LAGGING);
            put_u64(&mut out, *applied);
        }
        Response::Err(msg) => {
            out.push(tag::ERR);
            out.extend_from_slice(msg.as_bytes());
        }
        Response::ProtoErr(msg) => {
            out.push(tag::PROTO_ERR);
            out.extend_from_slice(msg.as_bytes());
        }
    }
    out
}

/// Encodes `req` as a complete frame.
pub fn encode_request(out: &mut Vec<u8>, req: &Request) {
    let body = encode_request_body(req);
    encode_frame(out, &body);
}

/// Encodes `resp` as a complete frame.
pub fn encode_response(out: &mut Vec<u8>, resp: &Response) {
    let body = encode_response_body(resp);
    encode_frame(out, &body);
}

// ---------------------------------------------------------------- decode

/// Bounds-checked reader over a frame body.
struct Reader<'a> {
    body: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(body: &'a [u8]) -> Self {
        Reader { body, pos: 0 }
    }

    fn u8(&mut self) -> Result<u8, ProtoError> {
        let b = *self.body.get(self.pos).ok_or(ProtoError::Truncated)?;
        self.pos += 1;
        Ok(b)
    }

    fn u32(&mut self) -> Result<u32, ProtoError> {
        let end = self.pos.checked_add(4).ok_or(ProtoError::Truncated)?;
        let bytes = self.body.get(self.pos..end).ok_or(ProtoError::Truncated)?;
        self.pos = end;
        let arr: [u8; 4] = bytes.try_into().map_err(|_| ProtoError::Truncated)?;
        Ok(u32::from_le_bytes(arr))
    }

    fn u64(&mut self) -> Result<u64, ProtoError> {
        let end = self.pos.checked_add(8).ok_or(ProtoError::Truncated)?;
        let bytes = self.body.get(self.pos..end).ok_or(ProtoError::Truncated)?;
        self.pos = end;
        let arr: [u8; 8] = bytes.try_into().map_err(|_| ProtoError::Truncated)?;
        Ok(u64::from_le_bytes(arr))
    }

    /// Reads and checks the version byte every body leads with.
    fn version(&mut self) -> Result<(), ProtoError> {
        let v = self.u8()?;
        if v != PROTO_VERSION {
            return Err(ProtoError::VersionMismatch(v));
        }
        Ok(())
    }

    fn bytes(&mut self) -> Result<Vec<u8>, ProtoError> {
        let len = self.u32()? as usize;
        if len > MAX_FRAME {
            return Err(ProtoError::LengthOverflow);
        }
        let end = self
            .pos
            .checked_add(len)
            .ok_or(ProtoError::LengthOverflow)?;
        let slice = self
            .body
            .get(self.pos..end)
            .ok_or(ProtoError::LengthOverflow)?;
        self.pos = end;
        Ok(slice.to_vec())
    }

    fn rest(&mut self) -> Vec<u8> {
        let out = self.body.get(self.pos..).unwrap_or(&[]).to_vec();
        self.pos = self.body.len();
        out
    }

    fn finish(&self) -> Result<(), ProtoError> {
        if self.pos == self.body.len() {
            Ok(())
        } else {
            Err(ProtoError::TrailingBytes)
        }
    }
}

/// Decodes a request frame body.
pub fn decode_request(body: &[u8]) -> Result<Request, ProtoError> {
    if body.len() > MAX_FRAME {
        return Err(ProtoError::Oversized);
    }
    let mut r = Reader::new(body);
    r.version()?;
    let req = match r.u8()? {
        opcode::GET => Request::Get { key: r.bytes()? },
        opcode::PUT => {
            let flags = r.u8()?;
            Request::Put {
                sync: flags & flags::SYNC != 0,
                key: r.bytes()?,
                value: r.bytes()?,
            }
        }
        opcode::DELETE => {
            let flags = r.u8()?;
            Request::Delete {
                sync: flags & flags::SYNC != 0,
                key: r.bytes()?,
            }
        }
        opcode::SCAN => {
            let start = r.bytes()?;
            let end = match r.u8()? {
                0 => None,
                _ => Some(r.bytes()?),
            };
            Request::Scan {
                start,
                end,
                limit: r.u32()?,
            }
        }
        opcode::WRITE_BATCH => {
            let flags = r.u8()?;
            let count = r.u32()? as usize;
            // Each op needs at least 5 body bytes; reject counts the
            // remaining bytes cannot possibly satisfy before reserving.
            if count > body.len() / 5 + 1 {
                return Err(ProtoError::LengthOverflow);
            }
            let mut ops = Vec::with_capacity(count);
            for _ in 0..count {
                match r.u8()? {
                    0 => ops.push(BatchOp::Put {
                        key: r.bytes()?,
                        value: r.bytes()?,
                    }),
                    1 => ops.push(BatchOp::Delete { key: r.bytes()? }),
                    k => return Err(ProtoError::BadBatchOp(k)),
                }
            }
            Request::WriteBatch {
                ops,
                sync: flags & flags::SYNC != 0,
            }
        }
        opcode::STATS => Request::Stats { json: r.u8()? != 0 },
        opcode::REPL_HELLO => {
            let count = r.u32()? as usize;
            // Each cursor is 16 body bytes; reject impossible counts
            // before reserving.
            if count > body.len() / 16 + 1 {
                return Err(ProtoError::LengthOverflow);
            }
            let mut cursors = Vec::with_capacity(count);
            for _ in 0..count {
                let segment = r.u64()?;
                let offset = r.u64()?;
                cursors.push((segment, offset));
            }
            Request::ReplHello { cursors }
        }
        opcode::REPL_ACK => Request::ReplAck {
            replica: r.u64()?,
            shard: r.u32()?,
            segment: r.u64()?,
            offset: r.u64()?,
            seq: r.u64()?,
        },
        opcode::PROMOTE => Request::Promote,
        opcode::GET_SEQ => Request::GetSeq,
        opcode::GET_RYW => {
            let key = r.bytes()?;
            let count = r.u32()? as usize;
            // Each token is 8 body bytes.
            if count > body.len() / 8 + 1 {
                return Err(ProtoError::LengthOverflow);
            }
            let mut min_seqs = Vec::with_capacity(count);
            for _ in 0..count {
                min_seqs.push(r.u64()?);
            }
            Request::GetRyw { key, min_seqs }
        }
        opcode::SHUTDOWN => Request::Shutdown,
        op => return Err(ProtoError::BadOpcode(op)),
    };
    r.finish()?;
    Ok(req)
}

/// Decodes a response frame body.
pub fn decode_response(body: &[u8]) -> Result<Response, ProtoError> {
    if body.len() > MAX_FRAME {
        return Err(ProtoError::Oversized);
    }
    let mut r = Reader::new(body);
    r.version()?;
    let resp = match r.u8()? {
        tag::OK => Response::Ok,
        tag::NOT_FOUND => Response::NotFound,
        tag::VALUE => Response::Value(r.rest()),
        t @ (tag::PAIRS | tag::PAIRS_PARTIAL) => {
            let count = r.u32()? as usize;
            if count > body.len() / 8 + 1 {
                return Err(ProtoError::LengthOverflow);
            }
            let mut pairs = Vec::with_capacity(count);
            for _ in 0..count {
                let k = r.bytes()?;
                let v = r.bytes()?;
                pairs.push((k, v));
            }
            if t == tag::PAIRS {
                Response::Pairs(pairs)
            } else {
                Response::PairsPartial(pairs)
            }
        }
        tag::STATS => Response::Stats(String::from_utf8_lossy(&r.rest()).into_owned()),
        tag::REPLICATE => Response::Replicate {
            shard: r.u32()?,
            segment: r.u64()?,
            offset: r.u64()?,
            last_seq: r.u64()?,
            record: r.bytes()?,
        },
        tag::SEQ_TOKENS => {
            let count = r.u32()? as usize;
            if count > body.len() / 8 + 1 {
                return Err(ProtoError::LengthOverflow);
            }
            let mut seqs = Vec::with_capacity(count);
            for _ in 0..count {
                seqs.push(r.u64()?);
            }
            Response::SeqTokens(seqs)
        }
        tag::LAGGING => Response::Lagging { applied: r.u64()? },
        tag::ERR => Response::Err(String::from_utf8_lossy(&r.rest()).into_owned()),
        tag::PROTO_ERR => Response::ProtoErr(String::from_utf8_lossy(&r.rest()).into_owned()),
        t => return Err(ProtoError::BadTag(t)),
    };
    r.finish()?;
    Ok(resp)
}

/// Validates a frame length prefix, returning the body length.
pub fn frame_len(prefix: [u8; 4]) -> Result<usize, ProtoError> {
    let len = u32::from_le_bytes(prefix) as usize;
    if len > MAX_FRAME {
        Err(ProtoError::Oversized)
    } else {
        Ok(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip_request(req: Request) {
        let body = encode_request_body(&req);
        assert_eq!(decode_request(&body), Ok(req));
    }

    fn round_trip_response(resp: Response) {
        let body = encode_response_body(&resp);
        assert_eq!(decode_response(&body), Ok(resp));
    }

    #[test]
    fn request_round_trips() {
        round_trip_request(Request::Get { key: b"k".to_vec() });
        round_trip_request(Request::Put {
            key: b"k".to_vec(),
            value: vec![0u8; 1000],
            sync: true,
        });
        round_trip_request(Request::Delete {
            key: vec![],
            sync: false,
        });
        round_trip_request(Request::Scan {
            start: b"a".to_vec(),
            end: Some(b"z".to_vec()),
            limit: 100,
        });
        round_trip_request(Request::Scan {
            start: vec![],
            end: None,
            limit: 0,
        });
        round_trip_request(Request::WriteBatch {
            ops: vec![
                BatchOp::Put {
                    key: b"a".to_vec(),
                    value: b"1".to_vec(),
                },
                BatchOp::Delete { key: b"b".to_vec() },
            ],
            sync: true,
        });
        round_trip_request(Request::Stats { json: true });
        round_trip_request(Request::ReplHello {
            cursors: vec![(3, 4096), (7, 0)],
        });
        round_trip_request(Request::ReplHello { cursors: vec![] });
        round_trip_request(Request::ReplAck {
            replica: 1,
            shard: 2,
            segment: 9,
            offset: u64::MAX,
            seq: 12345,
        });
        round_trip_request(Request::Promote);
        round_trip_request(Request::GetSeq);
        round_trip_request(Request::GetRyw {
            key: b"k".to_vec(),
            min_seqs: vec![0, u64::MAX, 7],
        });
        round_trip_request(Request::Shutdown);
    }

    #[test]
    fn response_round_trips() {
        round_trip_response(Response::Ok);
        round_trip_response(Response::NotFound);
        round_trip_response(Response::Value(vec![7u8; 300]));
        round_trip_response(Response::Pairs(vec![
            (b"k1".to_vec(), b"v1".to_vec()),
            (vec![], vec![]),
        ]));
        round_trip_response(Response::PairsPartial(vec![(
            b"k1".to_vec(),
            vec![9u8; 64],
        )]));
        round_trip_response(Response::PairsPartial(vec![]));
        round_trip_response(Response::Stats("counter x 1\n".into()));
        round_trip_response(Response::Replicate {
            shard: 1,
            segment: 6,
            offset: 32768,
            last_seq: 99,
            record: vec![0xAB; 200],
        });
        round_trip_response(Response::SeqTokens(vec![5, 0, u64::MAX]));
        round_trip_response(Response::SeqTokens(vec![]));
        round_trip_response(Response::Lagging { applied: 41 });
        round_trip_response(Response::Err("read-only".into()));
        round_trip_response(Response::ProtoErr("truncated frame".into()));
    }

    #[test]
    fn truncation_is_an_error_everywhere() {
        let body = encode_request_body(&Request::Put {
            key: b"key".to_vec(),
            value: b"value".to_vec(),
            sync: false,
        });
        for cut in 0..body.len() {
            let err = decode_request(&body[..cut]);
            assert!(err.is_err(), "prefix of length {cut} must not decode");
        }
    }

    #[test]
    fn hostile_lengths_do_not_allocate() {
        // A batch claiming u32::MAX ops in a tiny body must be rejected
        // before any `Vec::with_capacity(u32::MAX)`.
        let mut body = vec![PROTO_VERSION, opcode::WRITE_BATCH, 0];
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_request(&body), Err(ProtoError::LengthOverflow));

        // A field length pointing far past the body end.
        let mut body = vec![PROTO_VERSION, opcode::GET];
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_request(&body), Err(ProtoError::LengthOverflow));

        // Replication cursor / token counts the body cannot hold.
        let mut body = vec![PROTO_VERSION, opcode::REPL_HELLO];
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_request(&body), Err(ProtoError::LengthOverflow));
        let mut body = vec![PROTO_VERSION, tag::SEQ_TOKENS];
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_response(&body), Err(ProtoError::LengthOverflow));
        let mut body = vec![PROTO_VERSION, opcode::GET_RYW];
        body.extend_from_slice(&1u32.to_le_bytes());
        body.push(b'k');
        body.extend_from_slice(&u32::MAX.to_le_bytes());
        assert_eq!(decode_request(&body), Err(ProtoError::LengthOverflow));
    }

    #[test]
    fn unknown_opcodes_and_trailing_bytes_rejected() {
        assert_eq!(
            decode_request(&[PROTO_VERSION, 0xEE]),
            Err(ProtoError::BadOpcode(0xEE))
        );
        assert_eq!(
            decode_response(&[PROTO_VERSION, 0xEE]),
            Err(ProtoError::BadTag(0xEE))
        );
        let mut body = encode_request_body(&Request::Stats { json: false });
        body.push(0);
        assert_eq!(decode_request(&body), Err(ProtoError::TrailingBytes));
        assert_eq!(decode_request(&[]), Err(ProtoError::Truncated));
    }

    #[test]
    fn version_mismatch_fails_loudly() {
        // A frame from a different protocol version must be rejected on
        // the first byte — never parsed as fields.
        let mut body = encode_request_body(&Request::Get { key: b"k".to_vec() });
        body[0] = PROTO_VERSION + 1;
        assert_eq!(
            decode_request(&body),
            Err(ProtoError::VersionMismatch(PROTO_VERSION + 1))
        );
        let mut body = encode_response_body(&Response::Ok);
        body[0] = 0;
        assert_eq!(decode_response(&body), Err(ProtoError::VersionMismatch(0)));
        // The error's display names both versions so the operator can
        // tell which node is stale.
        let msg = ProtoError::VersionMismatch(9).to_string();
        assert!(msg.contains('9') && msg.contains('1'), "{msg}");
    }

    #[test]
    fn frame_len_caps_at_max() {
        assert_eq!(frame_len(100u32.to_le_bytes()), Ok(100));
        assert_eq!(
            frame_len(u32::MAX.to_le_bytes()),
            Err(ProtoError::Oversized)
        );
    }
}
