//! Server-side replication: leader feed serving, replica apply loop,
//! ack bookkeeping and the `repl.*` metric family.
//!
//! The wire design uses **two connections** per replica, because the
//! runtime shim has no `select!`: a *feed* connection that the replica
//! opens with [`Request::ReplHello`] and the leader then drives one-way
//! (a stream of [`Response::Replicate`] frames), and an *ack* control
//! connection carrying ordinary [`Request::ReplAck`] request/responses.
//! The handshake reply assigns a replica id that ties the two together.
//!
//! Durability contract: a leader write with `sync` semantics does not
//! acknowledge until every *registered* replica has acked the shard's
//! visible sequence (semi-synchronous replication, bounded by
//! [`SEMI_SYNC_WAIT`] so a wedged replica degrades to leader-only
//! durability instead of wedging the leader — counted in
//! `repl.ack_wait_timeouts`). A replica acks a record only after
//! [`lsm::Db::apply_replicated`] returned, which WAL-appends the record
//! locally first, so an acked prefix survives a replica power cut too.
//!
//! Catch-up is cursor-based: the replica keeps its per-shard WAL cursors
//! in memory and reconnects with them after a disconnect, so only the
//! unseen suffix is re-shipped. After a replica *restart* the cursors
//! are zero, which the leader treats as "from the start of retained
//! history" — the full retained WAL is re-shipped and the apply path
//! drops already-applied records by sequence, trading restart bandwidth
//! for not having to persist cursors crash-consistently.

use std::collections::HashMap;
use std::io::{Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

use lsm::WalCursor;
use tokio::io::AsyncWriteExt;
use tokio::net::TcpStream;

use crate::proto::{self, Request, Response};
use crate::server::Shared;

/// Byte budget per feed chunk read (several WAL blocks' worth).
const FEED_CHUNK_BYTES: usize = 256 * 1024;

/// Feed poll interval while caught up.
const FEED_POLL: Duration = Duration::from_millis(2);

/// Upper bound on a leader sync write's wait for replica acks.
pub(crate) const SEMI_SYNC_WAIT: Duration = Duration::from_secs(2);

/// Replica-side read timeout on the feed socket: the granularity at
/// which the apply loop notices a stop/promote request.
const REPLICA_READ_TIMEOUT: Duration = Duration::from_millis(50);

/// Cap on the replica's reconnect backoff.
const RECONNECT_BACKOFF_CAP: Duration = Duration::from_secs(1);

/// Pre-registered `repl.*` metric handles. Registered unconditionally —
/// a leader without replicas exports zeroed gauges, so dashboards don't
/// have to special-case standalone nodes.
pub(crate) struct ReplMetrics {
    /// Bytes of leader WAL the slowest feed has not consumed.
    pub(crate) lag_bytes: Arc<obs::Gauge>,
    /// Seconds the slowest feed has been continuously behind (0 when
    /// caught up). Driven by the injectable `obs` clock.
    pub(crate) lag_seconds: Arc<obs::Gauge>,
    /// Replication acks processed.
    pub(crate) acks: Arc<obs::Counter>,
    /// Replica→leader promotions on this node.
    pub(crate) promotions: Arc<obs::Counter>,
    /// Handshake→first-caught-up latency per feed connection.
    pub(crate) catchup_micros: Arc<obs::Histogram>,
    /// Stream records shipped by this leader.
    pub(crate) records_sent: Arc<obs::Counter>,
    /// Stream records applied by this replica.
    pub(crate) records_applied: Arc<obs::Counter>,
    /// Put ops dropped from the stream (stale value-log pointers whose
    /// GC rewrite is ahead in the stream).
    pub(crate) skipped_ops: Arc<obs::Counter>,
    /// Semi-sync ack waits that hit [`SEMI_SYNC_WAIT`].
    pub(crate) ack_wait_timeouts: Arc<obs::Counter>,
}

impl ReplMetrics {
    pub(crate) fn new(registry: &obs::Registry) -> Self {
        ReplMetrics {
            lag_bytes: registry.gauge("repl.lag.bytes"),
            lag_seconds: registry.gauge("repl.lag.seconds"),
            acks: registry.counter("repl.acks"),
            promotions: registry.counter("repl.promotions"),
            catchup_micros: registry.histogram("repl.catchup_micros"),
            records_sent: registry.counter("repl.records.sent"),
            records_applied: registry.counter("repl.records.applied"),
            skipped_ops: registry.counter("repl.skipped_ops"),
            ack_wait_timeouts: registry.counter("repl.ack_wait_timeouts"),
        }
    }
}

/// Per-replica progress, updated by acks.
struct ReplicaProgress {
    /// Highest acked sequence per shard.
    seq: Vec<u64>,
    /// Highest acked WAL segment per shard.
    segment: Vec<u64>,
}

/// Replication state shared by dispatch, feed tasks and the replica
/// apply loop.
pub(crate) struct ReplState {
    pub(crate) metrics: ReplMetrics,
    /// True while this node applies a leader's stream (rejects writes).
    is_replica: AtomicBool,
    /// Stops feed loops and the replica apply loop (promotion/shutdown).
    stop: AtomicBool,
    next_id: AtomicU64,
    replicas: Mutex<HashMap<u64, ReplicaProgress>>,
    /// Signalled on every ack and on unregister, for semi-sync waiters.
    ack_cv: Condvar,
    /// `obs` micros of the last moment the slowest feed was caught up.
    last_caught_up: AtomicU64,
    /// Graceful-shutdown completion flag + its condvar (the binary's
    /// main thread blocks on it).
    done: Mutex<bool>,
    done_cv: Condvar,
}

impl ReplState {
    pub(crate) fn new(registry: &obs::Registry, is_replica: bool) -> Self {
        ReplState {
            metrics: ReplMetrics::new(registry),
            is_replica: AtomicBool::new(is_replica),
            stop: AtomicBool::new(false),
            next_id: AtomicU64::new(1),
            replicas: Mutex::new(HashMap::new()),
            ack_cv: Condvar::new(),
            last_caught_up: AtomicU64::new(0),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
        }
    }

    pub(crate) fn is_replica(&self) -> bool {
        self.is_replica.load(Ordering::Acquire)
    }

    /// Replica→leader transition. Returns whether the role changed
    /// (promoting a leader is a no-op, so retries are idempotent).
    pub(crate) fn promote(&self) -> bool {
        let was = self.is_replica.swap(false, Ordering::AcqRel);
        if was {
            self.stop.store(true, Ordering::Release);
            self.metrics.promotions.inc();
        }
        was
    }

    /// Stops feed loops and the apply loop (shutdown path).
    pub(crate) fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
    }

    pub(crate) fn stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    fn register_replica(&self, shards: usize) -> u64 {
        let id = self.next_id.fetch_add(1, Ordering::AcqRel);
        let mut table = self
            .replicas
            .lock() // LOCK-ORDER: server.repl.replicas 90
            .unwrap_or_else(PoisonError::into_inner);
        table.insert(
            id,
            ReplicaProgress {
                seq: vec![0; shards],
                segment: vec![0; shards],
            },
        );
        id
    }

    fn unregister_replica(&self, id: u64) {
        let mut table = self
            .replicas
            .lock() // LOCK-ORDER: server.repl.replicas 90
            .unwrap_or_else(PoisonError::into_inner);
        table.remove(&id);
        // Wake semi-sync waiters: a gone replica no longer gates acks.
        self.ack_cv.notify_all();
    }

    pub(crate) fn has_replicas(&self) -> bool {
        !self
            .replicas
            .lock() // LOCK-ORDER: server.repl.replicas 90
            .unwrap_or_else(PoisonError::into_inner)
            .is_empty()
    }

    /// Records one ack and returns the new minimum acked segment across
    /// all registered replicas for `shard` — the WAL retention floor the
    /// caller installs on the shard's store. `None` when the replica id
    /// is unknown (stale ack after a disconnect).
    pub(crate) fn record_ack(&self, id: u64, shard: usize, segment: u64, seq: u64) -> Option<u64> {
        let mut table = self
            .replicas
            .lock() // LOCK-ORDER: server.repl.replicas 90
            .unwrap_or_else(PoisonError::into_inner);
        let progress = table.get_mut(&id)?;
        if let (Some(s), Some(g)) = (progress.seq.get_mut(shard), progress.segment.get_mut(shard)) {
            *s = (*s).max(seq);
            *g = (*g).max(segment);
        }
        self.metrics.acks.inc();
        let floor = table
            .values()
            .filter_map(|p| p.segment.get(shard).copied())
            .min();
        self.ack_cv.notify_all();
        floor
    }

    /// Blocks until every registered replica has acked `seq` on `shard`
    /// (immediately true with no replicas), or `timeout` passes.
    pub(crate) fn wait_replicated(&self, shard: usize, seq: u64, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut table = self
            .replicas
            .lock() // LOCK-ORDER: server.repl.replicas 90
            .unwrap_or_else(PoisonError::into_inner);
        loop {
            let all_acked = table
                .values()
                .all(|p| p.seq.get(shard).copied().unwrap_or(0) >= seq);
            if all_acked {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (guard, _timeout) = self
                .ack_cv
                .wait_timeout(table, deadline - now)
                .unwrap_or_else(PoisonError::into_inner);
            table = guard;
        }
    }

    /// Marks graceful shutdown complete and wakes
    /// [`ReplState::wait_shutdown`] callers.
    pub(crate) fn signal_shutdown(&self) {
        let mut done = self
            .done
            .lock() // LOCK-ORDER: server.repl.done 95
            .unwrap_or_else(PoisonError::into_inner);
        *done = true;
        self.done_cv.notify_all();
    }

    /// Blocks until a graceful shutdown completes (the `kv-server`
    /// binary's replacement for parking forever).
    pub(crate) fn wait_shutdown(&self) {
        let mut done = self
            .done
            .lock() // LOCK-ORDER: server.repl.done 95
            .unwrap_or_else(PoisonError::into_inner);
        while !*done {
            done = self
                .done_cv
                .wait(done)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

// ------------------------------------------------------------- leader

/// Serves one feed connection: registers the replica, replays from its
/// cursors, then tails each shard's WAL, shipping records until the
/// socket drops or a stop is requested. The connection task that decoded
/// the `ReplHello` hands its stream over to this function and never
/// returns to request/response dispatch.
pub(crate) async fn serve_feed(
    shared: &Arc<Shared>,
    mut stream: TcpStream,
    hello_cursors: Vec<(u64, u64)>,
) -> std::io::Result<()> {
    let nshards = shared.shards.len();
    let repl = &shared.repl;
    // Normalize the handshake cursors: one per shard; segment 0 (or a
    // missing entry) means "from the start of retained history" — WAL
    // file numbers are always > 0, so 0 is free as a sentinel.
    let mut cursors: Vec<WalCursor> = Vec::with_capacity(nshards);
    for (i, db) in shared.shards.iter().enumerate() {
        let (segment, offset) = hello_cursors.get(i).copied().unwrap_or((0, 0));
        let cursor = if segment == 0 {
            match db.repl_start_cursor() {
                Ok(c) => c,
                Err(e) => {
                    return send_response(
                        &mut stream,
                        &Response::Err(format!("replication feed: {e}")),
                    )
                    .await;
                }
            }
        } else {
            WalCursor { segment, offset }
        };
        cursors.push(cursor);
    }
    let id = repl.register_replica(nshards);
    let t0 = shared.obs.now_micros();
    repl.last_caught_up.store(t0, Ordering::Release);
    // Handshake reply carries the assigned replica id, which the ack
    // connection echoes in every `ReplAck`.
    send_response(&mut stream, &Response::SeqTokens(vec![id])).await?;
    let result = feed_loop(shared, &mut stream, &mut cursors, t0).await;
    repl.unregister_replica(id);
    result
}

async fn feed_loop(
    shared: &Arc<Shared>,
    stream: &mut TcpStream,
    cursors: &mut [WalCursor],
    t0: u64,
) -> std::io::Result<()> {
    let repl = &shared.repl;
    let mut caught_up_once = false;
    loop {
        if repl.stopped() {
            return Ok(());
        }
        let mut sent = 0usize;
        let mut all_caught_up = true;
        for (shard, db) in shared.shards.iter().enumerate() {
            let chunk = match db.repl_read_chunk(cursors[shard], FEED_CHUNK_BYTES) {
                Ok(chunk) => chunk,
                Err(e) => {
                    // The cursor is unserveable (e.g. points at a
                    // retired segment after a long disconnect): tell the
                    // replica so it can fall back to a full resync.
                    return send_response(stream, &Response::Err(format!("replication feed: {e}")))
                        .await;
                }
            };
            repl.metrics.skipped_ops.add(chunk.skipped_ops);
            for record in chunk.records {
                sent += 1;
                send_response(
                    stream,
                    &Response::Replicate {
                        shard: shard as u32,
                        segment: record.resume.segment,
                        offset: record.resume.offset,
                        last_seq: record.last_seq,
                        record: record.data,
                    },
                )
                .await?;
            }
            cursors[shard] = chunk.cursor;
            if chunk.end == lsm::ChunkEnd::More {
                all_caught_up = false;
            }
        }
        repl.metrics.records_sent.add(sent as u64);
        let now = shared.obs.now_micros();
        let lag: u64 = shared
            .shards
            .iter()
            .enumerate()
            .map(|(shard, db)| db.repl_lag_bytes(cursors[shard]))
            .sum();
        repl.metrics.lag_bytes.set(lag);
        if sent == 0 && all_caught_up {
            if !caught_up_once {
                caught_up_once = true;
                repl.metrics.catchup_micros.record(now.saturating_sub(t0));
            }
            repl.last_caught_up.store(now, Ordering::Release);
            repl.metrics.lag_seconds.set(0);
            // Caught up to the readable prefix: push buffered WAL (and
            // value-log) bytes out so the next pass can see them, then
            // poll.
            for db in &shared.shards {
                let _ = db.repl_flush();
            }
            std::thread::sleep(FEED_POLL);
        } else {
            let behind_since = repl.last_caught_up.load(Ordering::Acquire);
            repl.metrics
                .lag_seconds
                .set(now.saturating_sub(behind_since) / 1_000_000);
        }
    }
}

async fn send_response(stream: &mut TcpStream, resp: &Response) -> std::io::Result<()> {
    let mut out = Vec::new();
    proto::encode_response(&mut out, resp);
    stream.write_all(&out).await
}

// ------------------------------------------------------------ replica

/// The replica apply loop: connect to the leader, stream, apply, ack;
/// reconnect with bounded exponential backoff on any error, resuming
/// from the in-memory cursors. Runs on its own thread until stopped by
/// promotion or shutdown.
pub(crate) fn run_replica(shared: Arc<Shared>, leader: String) {
    let mut cursors: Vec<(u64, u64)> = vec![(0, 0); shared.shards.len()];
    let mut backoff = Duration::from_millis(10);
    while !shared.repl.stopped() {
        match replica_session(&shared, &leader, &mut cursors) {
            Ok(true) => backoff = Duration::from_millis(10),
            Ok(false) | Err(_) => backoff = (backoff * 2).min(RECONNECT_BACKOFF_CAP),
        }
        if shared.repl.stopped() {
            break;
        }
        std::thread::sleep(backoff);
    }
}

/// One feed session. Returns whether any record was applied (resets the
/// caller's backoff).
fn replica_session(
    shared: &Arc<Shared>,
    leader: &str,
    cursors: &mut [(u64, u64)],
) -> std::io::Result<bool> {
    let stream = std::net::TcpStream::connect(leader)?;
    stream.set_nodelay(true)?;
    stream.set_read_timeout(Some(REPLICA_READ_TIMEOUT))?;
    let mut feed = FrameReader::new(stream);
    let mut out = Vec::new();
    proto::encode_request(
        &mut out,
        &Request::ReplHello {
            cursors: cursors.to_vec(),
        },
    );
    feed.stream.write_all(&out)?;
    let repl = &shared.repl;
    let Some(hello) = feed.next_frame(|| repl.stopped())? else {
        return Ok(false);
    };
    let id = match proto::decode_response(&hello) {
        Ok(Response::SeqTokens(ids)) if ids.len() == 1 => ids[0],
        Ok(Response::Err(_)) => {
            // Our cursors are unserveable: full resync next session.
            for c in cursors.iter_mut() {
                *c = (0, 0);
            }
            return Ok(false);
        }
        other => {
            return Err(stream_error(format!(
                "unexpected handshake reply: {other:?}"
            )))
        }
    };
    // Separate control connection for acks, so they never queue behind
    // the one-way feed.
    let mut ack = crate::client::KvClient::connect(leader)
        .map_err(|e| stream_error(format!("ack connect failed: {e}")))?;
    let mut progressed = false;
    loop {
        let Some(body) = feed.next_frame(|| repl.stopped())? else {
            return Ok(progressed);
        };
        match proto::decode_response(&body) {
            Ok(Response::Replicate {
                shard,
                segment,
                offset,
                last_seq,
                record,
            }) => {
                let shard = shard as usize;
                let Some(db) = shared.shards.get(shard) else {
                    return Err(stream_error(format!("feed for unknown shard {shard}")));
                };
                // Apply with the leader's sequence stamps; sync when the
                // server runs in sync mode so the ack below implies the
                // record survives a replica power cut.
                let applied = db
                    .apply_replicated(&record, last_seq, shared.force_sync)
                    .map_err(|e| stream_error(format!("replica apply failed: {e}")))?;
                if let Some(c) = cursors.get_mut(shard) {
                    *c = (segment, offset);
                }
                repl.metrics.records_applied.inc();
                progressed = true;
                ack.repl_ack(id, shard as u32, segment, offset, applied)
                    .map_err(|e| stream_error(format!("ack failed: {e}")))?;
            }
            Ok(Response::Err(_)) => {
                // Mid-stream feed error (e.g. the leader lost a segment
                // we still need): full resync next session.
                for c in cursors.iter_mut() {
                    *c = (0, 0);
                }
                return Ok(progressed);
            }
            Ok(other) => {
                return Err(stream_error(format!("unexpected feed frame: {other:?}")));
            }
            Err(e) => return Err(stream_error(format!("feed decode: {e}"))),
        }
    }
}

fn stream_error(msg: String) -> std::io::Error {
    std::io::Error::new(std::io::ErrorKind::InvalidData, msg)
}

/// Frame reader over a blocking socket with a read timeout: buffers
/// partial reads so a timeout can never desynchronize framing, and polls
/// `stop` between reads so the loop stays responsive to promotion and
/// shutdown.
struct FrameReader {
    stream: std::net::TcpStream,
    buf: Vec<u8>,
}

impl FrameReader {
    fn new(stream: std::net::TcpStream) -> Self {
        FrameReader {
            stream,
            buf: Vec::new(),
        }
    }

    /// Returns the next complete frame body, or `None` when `stop`
    /// turned true while waiting for bytes.
    fn next_frame(&mut self, stop: impl Fn() -> bool) -> std::io::Result<Option<Vec<u8>>> {
        loop {
            if self.buf.len() >= 4 {
                let prefix = [self.buf[0], self.buf[1], self.buf[2], self.buf[3]];
                let len = proto::frame_len(prefix)
                    .map_err(|e| stream_error(format!("feed frame: {e}")))?;
                if self.buf.len() >= 4 + len {
                    let body = self.buf[4..4 + len].to_vec();
                    self.buf.drain(..4 + len);
                    return Ok(Some(body));
                }
            }
            if stop() {
                return Ok(None);
            }
            let mut chunk = [0u8; 16 * 1024];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    return Err(std::io::Error::new(
                        std::io::ErrorKind::UnexpectedEof,
                        "feed connection closed",
                    ));
                }
                Ok(n) => self.buf.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == std::io::ErrorKind::WouldBlock
                        || e.kind() == std::io::ErrorKind::TimedOut =>
                {
                    // Read timeout: loop to re-check `stop`.
                }
                Err(e) => return Err(e),
            }
        }
    }
}
