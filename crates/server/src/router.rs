//! Range-partitioned shard routing.
//!
//! The keyspace is split at `N - 1` sorted boundary keys into `N`
//! contiguous shards: shard `i` owns `[boundary[i-1], boundary[i])`
//! (with open ends at the extremes). Range partitioning — rather than
//! hashing — keeps scans contiguous: a scan touches only the shards
//! whose ranges intersect `[start, end)`, in order, and the
//! concatenation of their results is already globally sorted.
//!
//! [`decimal_boundaries`] builds even splits of the db_bench/YCSB
//! decimal keyspace (`workloads::KeyFormat`'s zero-padded keys), so the
//! standard workloads spread across shards out of the box.

use workloads::KeyFormat;

/// Maps keys and ranges to shard indices via sorted boundary keys.
#[derive(Debug, Clone)]
pub struct ShardRouter {
    /// `shards - 1` sorted split points; shard `i` owns keys in
    /// `[boundaries[i-1], boundaries[i])`.
    boundaries: Vec<Vec<u8>>,
}

impl ShardRouter {
    /// A router over `boundaries.len() + 1` shards. Boundaries are
    /// sorted and deduplicated; equal or unsorted inputs therefore
    /// collapse rather than produce unreachable shards.
    pub fn new(mut boundaries: Vec<Vec<u8>>) -> Self {
        boundaries.sort();
        boundaries.dedup();
        ShardRouter { boundaries }
    }

    /// Even splits of the fixed-width decimal keyspace that
    /// [`KeyFormat`] formats into, for `shards` shards.
    ///
    /// Note that db_bench/YCSB *record ids* are dense in
    /// `0..record_count` — far below the full keyspace — so a server
    /// fronting those workloads should pre-split with
    /// [`ShardRouter::split_boundaries`] over the record count instead;
    /// full-space splits would route every dense key to shard 0.
    pub fn decimal_boundaries(shards: usize, key_len: usize) -> Vec<Vec<u8>> {
        let format = KeyFormat { key_len };
        Self::split_boundaries(format.key_space(), shards, key_len)
    }

    /// Even splits of the decimal key range `[0, space)` — HBase-style
    /// pre-splitting for a workload whose key numbers are known to be
    /// dense in that range (e.g. `space` = YCSB record count).
    pub fn split_boundaries(space: u64, shards: usize, key_len: usize) -> Vec<Vec<u8>> {
        let format = KeyFormat { key_len };
        let shards = shards.max(1) as u64;
        (1..shards)
            .map(|i| format.format((space / shards).max(1).saturating_mul(i)))
            .collect()
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.boundaries.len() + 1
    }

    /// The shard owning `key`.
    pub fn shard_for(&self, key: &[u8]) -> usize {
        // partition_point: first boundary > key is the owner (boundary
        // keys belong to the shard they open).
        self.boundaries.partition_point(|b| b.as_slice() <= key)
    }

    /// The contiguous shard range `[first, last]` intersecting
    /// `[start, end)`; `None` when the range is empty.
    pub fn shards_for_range(&self, start: &[u8], end: Option<&[u8]>) -> Option<(usize, usize)> {
        if let Some(end) = end {
            if end <= start {
                return None;
            }
        }
        let first = self.shard_for(start);
        let last = match end {
            // `end` is exclusive: the shard owning the last possible key
            // below `end` is the one owning `end`'s predecessor, which
            // partition_point with `< end` yields.
            Some(end) => self.boundaries.partition_point(|b| b.as_slice() < end),
            None => self.shards() - 1,
        };
        Some((first, last.max(first)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn router4() -> ShardRouter {
        ShardRouter::new(vec![b"b".to_vec(), b"m".to_vec(), b"t".to_vec()])
    }

    #[test]
    fn keys_route_to_owning_shard() {
        let r = router4();
        assert_eq!(r.shards(), 4);
        assert_eq!(r.shard_for(b""), 0);
        assert_eq!(r.shard_for(b"a"), 0);
        assert_eq!(r.shard_for(b"b"), 1, "boundary key opens its shard");
        assert_eq!(r.shard_for(b"cat"), 1);
        assert_eq!(r.shard_for(b"m"), 2);
        assert_eq!(r.shard_for(b"s"), 2);
        assert_eq!(r.shard_for(b"t"), 3);
        assert_eq!(r.shard_for(b"zzz"), 3);
    }

    #[test]
    fn ranges_cover_contiguous_shards() {
        let r = router4();
        assert_eq!(r.shards_for_range(b"a", Some(b"c")), Some((0, 1)));
        assert_eq!(r.shards_for_range(b"", None), Some((0, 3)));
        assert_eq!(r.shards_for_range(b"c", Some(b"d")), Some((1, 1)));
        // End exactly on a boundary stays below it: ["a", "b") is shard 0.
        assert_eq!(r.shards_for_range(b"a", Some(b"b")), Some((0, 0)));
        assert_eq!(r.shards_for_range(b"x", Some(b"x")), None);
        assert_eq!(r.shards_for_range(b"z", Some(b"a")), None);
    }

    #[test]
    fn decimal_boundaries_spread_the_ycsb_keyspace() {
        let boundaries = ShardRouter::decimal_boundaries(4, 16);
        let r = ShardRouter::new(boundaries);
        assert_eq!(r.shards(), 4);
        let format = KeyFormat { key_len: 16 };
        let space = format.key_space();
        // Keys from each quarter of the keyspace land on distinct shards.
        for (i, numerator) in [1u64, 3, 5, 7].iter().enumerate() {
            let key = format.format(space / 8 * numerator);
            assert_eq!(r.shard_for(&key), i, "key {numerator}/8 of keyspace");
        }
    }

    #[test]
    fn split_boundaries_spread_dense_record_ids() {
        // YCSB record ids are dense in [0, records): a full-space split
        // would put all of them on shard 0, a [0, records) pre-split
        // spreads them evenly.
        let records = 10_000u64;
        let r = ShardRouter::new(ShardRouter::split_boundaries(records, 4, 16));
        assert_eq!(r.shards(), 4);
        let format = KeyFormat { key_len: 16 };
        let mut per_shard = [0u64; 4];
        for i in 0..records {
            per_shard[r.shard_for(&format.format(i))] += 1;
        }
        for (shard, &n) in per_shard.iter().enumerate() {
            assert_eq!(n, records / 4, "shard {shard} of {per_shard:?}");
        }
    }

    #[test]
    fn single_shard_router_owns_everything() {
        let r = ShardRouter::new(vec![]);
        assert_eq!(r.shards(), 1);
        assert_eq!(r.shard_for(b"anything"), 0);
        assert_eq!(r.shards_for_range(b"", None), Some((0, 0)));
    }

    #[test]
    fn duplicate_boundaries_collapse() {
        let r = ShardRouter::new(vec![b"m".to_vec(), b"m".to_vec(), b"a".to_vec()]);
        assert_eq!(r.shards(), 3);
        assert_eq!(r.shard_for(b"a"), 1);
        assert_eq!(r.shard_for(b"z"), 2);
    }
}
