//! Network serving layer: a sharded KV server over `lsm` stores with a
//! shared `offload` compaction scheduler.
//!
//! The paper's central claim — FPGA offload frees host CPU for
//! user-facing service throughput — needs something user-facing to
//! measure. This crate provides it:
//!
//! * [`proto`] — length-prefixed binary wire protocol (`Get`/`Put`/
//!   `Delete`/`Scan`/`WriteBatch`/`Stats`) with in-order responses, so
//!   clients pipeline.
//! * [`router`] — range partitioning over N shards; scans stay
//!   contiguous and globally sorted.
//! * [`server`] — the tokio-based server: one task per connection, one
//!   `lsm::Db` per shard, **one** `offload::OffloadService` whose K
//!   engine slots every shard's compactions contend for, and `server.*`
//!   metrics on the shared `obs` registry.
//! * [`client`] — blocking client used by `kv-cli` and the load driver.
//! * `repl` — WAL-shipping replication: leader feed serving, replica
//!   apply loop, semi-sync ack waits, and the `repl.*` metric family
//!   (see DESIGN.md "Replication").
//! * [`load`] — YCSB replay at configurable connection counts,
//!   reporting p50/p95/p99 (used by `load_gen` and the saturation
//!   bench).
//!
//! Binaries: `kv-server` (serve), `kv-cli` (one-shot ops), `load_gen`
//! (workload replay), `server_saturation` (throughput/latency vs.
//! connection count at K=1 and K=4, appended to `BENCH_PR6.json`).

pub mod client;
pub mod load;
pub mod proto;
pub(crate) mod repl;
pub mod router;
pub mod server;

pub use client::{ClientError, KvClient};
pub use load::{LoadConfig, LoadReport};
pub use proto::{BatchOp, ProtoError, Request, Response};
pub use router::ShardRouter;
pub use server::{KvServer, ServerConfig, ServerHandle};
