//! Load driver: replays `workloads` YCSB mixes against a running server
//! at a configurable connection count, measuring client-side latency.
//!
//! Shared by the `load_gen` binary (CLI) and the `server_saturation`
//! bench (programmatic sweeps). Each connection runs on its own thread
//! with its own seeded [`YcsbRunner`] (seed + connection index, the
//! `FaultEnv` seed-band convention), so a run is reproducible for a
//! given `(seed, connections)` and no two connections replay the same
//! operation stream.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use workloads::{KeyFormat, OpKind, ValueGenerator, YcsbRunner, YcsbWorkload};

use crate::client::KvClient;
use crate::proto::{Request, Response};

/// One load run's shape.
#[derive(Debug, Clone)]
pub struct LoadConfig {
    /// Server address.
    pub addr: String,
    /// YCSB mix to replay.
    pub workload: YcsbWorkload,
    /// Concurrent connections (one thread each).
    pub connections: usize,
    /// Records assumed / created in the keyspace.
    pub records: u64,
    /// Run for this long...
    pub seconds: Option<u64>,
    /// ...or for this many operations per connection (first bound hit
    /// wins; at least one must be set).
    pub ops_per_connection: Option<u64>,
    /// Value size in bytes.
    pub value_len: usize,
    /// Key width (must match the server's shard boundaries).
    pub key_len: usize,
    /// Base seed; connection `i` derives `seed + i`.
    pub seed: u64,
    /// Load `records` keys through one connection before the timed run.
    pub preload: bool,
    /// Demand durable (WAL-synced) acks for writes.
    pub sync: bool,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: String::new(),
            workload: YcsbWorkload::A,
            connections: 16,
            records: 10_000,
            seconds: Some(10),
            ops_per_connection: None,
            value_len: 128,
            key_len: 16,
            seed: 1,
            preload: true,
            sync: false,
        }
    }
}

/// Aggregate results of a run.
#[derive(Debug, Clone)]
pub struct LoadReport {
    /// Operations completed successfully.
    pub ops: u64,
    /// Storage-side errors (server answered `Err`).
    pub storage_errors: u64,
    /// Protocol-level failures (decode errors, `ProtoErr`, transport
    /// failures mid-run). The smoke gate asserts this is zero.
    pub protocol_errors: u64,
    /// Successful reconnects after a transient transport failure — the
    /// worker rode out a server restart instead of aborting its stream.
    pub reconnects: u64,
    /// Timed-phase wall time.
    pub elapsed: Duration,
    /// Client-observed op latency distribution.
    pub latency: obs::HistogramSnapshot,
}

impl LoadReport {
    /// Completed operations per second over the timed phase.
    pub fn throughput_ops_s(&self) -> u64 {
        let secs = self.elapsed.as_secs_f64();
        if secs <= 0.0 {
            0
        } else {
            (self.ops as f64 / secs) as u64
        }
    }

    /// One greppable summary line (`key=value` pairs), the format the
    /// CI smoke job asserts on.
    pub fn summary_line(&self, label: &str) -> String {
        format!(
            "load_gen {label} ops={} throughput_ops_s={} p50_us={} p95_us={} p99_us={} \
             storage_errors={} protocol_errors={} reconnects={}",
            self.ops,
            self.throughput_ops_s(),
            self.latency.p50,
            self.latency.p95,
            self.latency.p99,
            self.storage_errors,
            self.protocol_errors,
            self.reconnects,
        )
    }
}

/// Inserts `records` keys (key numbers `0..records`) through one
/// connection using pipelined bursts, so later read-heavy phases hit
/// existing data.
pub fn preload(cfg: &LoadConfig) -> Result<(), crate::client::ClientError> {
    let mut client = KvClient::connect(&cfg.addr)?;
    let format = KeyFormat {
        key_len: cfg.key_len,
    };
    let mut values = ValueGenerator::new(cfg.seed, 0.5);
    const BURST: u64 = 64;
    let mut reqs = Vec::with_capacity(BURST as usize);
    let mut next = 0u64;
    while next < cfg.records {
        reqs.clear();
        let end = (next + BURST).min(cfg.records);
        for i in next..end {
            reqs.push(Request::Put {
                key: format.format(i),
                value: values.generate(cfg.value_len).to_vec(),
                sync: false,
            });
        }
        for resp in client.pipeline(&reqs)? {
            if !matches!(resp, Response::Ok) {
                return Err(crate::client::ClientError::Rejected(format!(
                    "preload write failed: {resp:?}"
                )));
            }
        }
        next = end;
    }
    Ok(())
}

/// Runs the configured load and returns the aggregate report.
///
/// Connection threads stop at the time bound (checked every operation)
/// or their op budget, whichever comes first. Latencies are recorded on
/// one shared histogram; counters aggregate with relaxed atomics.
pub fn run(cfg: &LoadConfig) -> Result<LoadReport, crate::client::ClientError> {
    if cfg.preload {
        preload(cfg)?;
    }

    let latency = Arc::new(obs::Histogram::new());
    let ops_done = Arc::new(AtomicU64::new(0));
    let storage_errors = Arc::new(AtomicU64::new(0));
    let protocol_errors = Arc::new(AtomicU64::new(0));
    let reconnects = Arc::new(AtomicU64::new(0));
    let stop = Arc::new(AtomicBool::new(false));

    let started = Instant::now();
    let deadline = cfg.seconds.map(|s| started + Duration::from_secs(s));
    let handles: Vec<_> = (0..cfg.connections.max(1))
        .map(|conn| {
            let cfg = cfg.clone();
            let latency = Arc::clone(&latency);
            let ops_done = Arc::clone(&ops_done);
            let storage_errors = Arc::clone(&storage_errors);
            let protocol_errors = Arc::clone(&protocol_errors);
            let reconnects = Arc::clone(&reconnects);
            let stop = Arc::clone(&stop);
            std::thread::spawn(move || {
                connection_worker(
                    &cfg,
                    conn as u64,
                    deadline,
                    &latency,
                    &ops_done,
                    &storage_errors,
                    &protocol_errors,
                    &reconnects,
                    &stop,
                );
            })
        })
        .collect();
    for h in handles {
        let _ = h.join();
    }
    let elapsed = started.elapsed();

    Ok(LoadReport {
        ops: ops_done.load(Ordering::Relaxed),
        storage_errors: storage_errors.load(Ordering::Relaxed),
        protocol_errors: protocol_errors.load(Ordering::Relaxed),
        reconnects: reconnects.load(Ordering::Relaxed),
        elapsed,
        latency: latency.snapshot(),
    })
}

/// Bounded-exponential-backoff connect for a worker thread: 10ms
/// doubling to 1s between attempts, giving up after ~10s of trying (or
/// earlier at the run deadline / stop flag). Rides out a server restart
/// mid-run instead of aborting the stream on the first refused connect.
fn connect_with_retry(
    cfg: &LoadConfig,
    deadline: Option<Instant>,
    stop: &AtomicBool,
) -> Option<KvClient> {
    let give_up = Instant::now() + Duration::from_secs(10);
    let mut pause = Duration::from_millis(10);
    loop {
        if stop.load(Ordering::Relaxed) {
            return None;
        }
        if let Some(d) = deadline {
            if Instant::now() >= d {
                return None;
            }
        }
        match KvClient::connect(&cfg.addr) {
            Ok(client) => return Some(client),
            Err(_) => {
                if Instant::now() >= give_up {
                    return None;
                }
                std::thread::sleep(pause);
                pause = (pause * 2).min(Duration::from_secs(1));
            }
        }
    }
}

#[allow(clippy::too_many_arguments)]
fn connection_worker(
    cfg: &LoadConfig,
    conn: u64,
    deadline: Option<Instant>,
    latency: &obs::Histogram,
    ops_done: &AtomicU64,
    storage_errors: &AtomicU64,
    protocol_errors: &AtomicU64,
    reconnects: &AtomicU64,
    stop: &AtomicBool,
) {
    let Some(mut client) = connect_with_retry(cfg, deadline, stop) else {
        protocol_errors.fetch_add(1, Ordering::Relaxed);
        return;
    };
    let format = KeyFormat {
        key_len: cfg.key_len,
    };
    let mut values = ValueGenerator::new(cfg.seed.wrapping_add(conn), 0.5);
    let mut runner = YcsbRunner::new(cfg.workload, cfg.records, cfg.seed.wrapping_add(conn));
    let budget = cfg.ops_per_connection.unwrap_or(u64::MAX);

    for _ in 0..budget {
        if stop.load(Ordering::Relaxed) {
            break;
        }
        if let Some(d) = deadline {
            if Instant::now() >= d {
                stop.store(true, Ordering::Relaxed);
                break;
            }
        }
        let op = runner.next_op();
        let key = format.format(op.record);
        let t0 = Instant::now();
        let result = match op.kind {
            OpKind::Read => client.get(&key).map(|_| ()),
            OpKind::Insert | OpKind::Update => {
                client.put(&key, values.generate(cfg.value_len), cfg.sync)
            }
            OpKind::Scan => client
                .scan(&key, None, op.scan_len.max(1) as u32)
                .map(|_| ()),
            OpKind::ReadModifyWrite => client.get(&key).and_then(|prior| {
                let mut v = prior.unwrap_or_default();
                v.extend_from_slice(values.generate(8));
                client.put(&key, &v, cfg.sync)
            }),
        };
        match result {
            Ok(()) => {
                latency.record(t0.elapsed().as_micros() as u64);
                ops_done.fetch_add(1, Ordering::Relaxed);
            }
            Err(crate::client::ClientError::Rejected(_)) => {
                storage_errors.fetch_add(1, Ordering::Relaxed);
            }
            // A dropped connection is transient (server restart, failover
            // promotion): reconnect with backoff and keep replaying. Only
            // an exhausted retry budget counts as a protocol failure.
            Err(crate::client::ClientError::Io(_)) => {
                match connect_with_retry(cfg, deadline, stop) {
                    Some(c) => {
                        client = c;
                        reconnects.fetch_add(1, Ordering::Relaxed);
                    }
                    None => {
                        // Ran out of retry budget mid-run; a run that
                        // simply ended (stop flag, deadline) is clean.
                        let run_over = stop.load(Ordering::Relaxed)
                            || deadline.is_some_and(|d| Instant::now() >= d);
                        if !run_over {
                            protocol_errors.fetch_add(1, Ordering::Relaxed);
                        }
                        return;
                    }
                }
            }
            Err(_) => {
                protocol_errors.fetch_add(1, Ordering::Relaxed);
                return;
            }
        }
    }
}

/// Parses a YCSB workload name (`load`, `a`..`f`, case-insensitive).
pub fn parse_workload(name: &str) -> Option<YcsbWorkload> {
    match name.to_ascii_lowercase().as_str() {
        "load" => Some(YcsbWorkload::Load),
        "a" => Some(YcsbWorkload::A),
        "b" => Some(YcsbWorkload::B),
        "c" => Some(YcsbWorkload::C),
        "d" => Some(YcsbWorkload::D),
        "e" => Some(YcsbWorkload::E),
        "f" => Some(YcsbWorkload::F),
        _ => None,
    }
}
