//! Loser tree (tournament tree) for k-way merge selection.
//!
//! A linear N-way comparer re-scans every input per selected pair —
//! O(N) comparisons each. The loser tree keeps the interior "losers" of
//! past matches so that after the winning input advances, only the
//! replay path from that leaf to the root is re-fought: O(log N)
//! comparisons per pair. This mirrors the hardware Key Compare module's
//! tournament network; the cycle model is unaffected because selection
//! *results* are identical — only software comparison count changes.
//!
//! The tree is generic over a `better(a, b) -> bool` ordering closure so
//! the comparer can encode internal-key order, exhausted-input demotion,
//! and tie-breaking by input index without this module knowing about any
//! of them.

/// Sentinel for "no contestant yet" slots during (re)build.
const UNSET: usize = usize::MAX;

/// A loser tree over `n` external players identified by index `0..n`.
///
/// The caller owns the players (merge inputs) and supplies the ordering;
/// the tree only stores indices. `better(a, b)` must return true when
/// player `a` beats player `b` (i.e. `a` should be selected first), must
/// be a strict weak ordering over the current player states, and must be
/// deterministic between [`LoserTree::rebuild`] / [`LoserTree::update`]
/// calls.
pub struct LoserTree {
    /// `tree[1..n]` holds the loser of each interior match; `tree[0]` the
    /// overall winner. Leaf `i`'s parent is `(i + n) / 2`.
    tree: Vec<usize>,
    n: usize,
}

impl LoserTree {
    /// Creates an unbuilt tree for `n` players; call `rebuild` before
    /// `winner`. `n` may be 0 (then `winner` is meaningless).
    pub fn new(n: usize) -> Self {
        LoserTree {
            tree: vec![UNSET; n.max(1)],
            n,
        }
    }

    /// Number of players.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when the tree has no players.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Rebuilds all matches from scratch (O(n) comparisons).
    pub fn rebuild(&mut self, mut better: impl FnMut(usize, usize) -> bool) {
        self.tree.fill(UNSET);
        for leaf in 0..self.n {
            self.replay(leaf, &mut better);
        }
    }

    /// Replays the matches on the path from `changed` to the root after
    /// that player's state changed (O(log n) comparisons).
    pub fn update(&mut self, changed: usize, mut better: impl FnMut(usize, usize) -> bool) {
        debug_assert!(changed < self.n);
        self.replay(changed, &mut better);
    }

    /// Current overall winner. Only meaningful after a full `rebuild`.
    pub fn winner(&self) -> usize {
        self.tree[0]
    }

    fn replay(&mut self, leaf: usize, better: &mut impl FnMut(usize, usize) -> bool) {
        let mut winner = leaf;
        let mut node = (leaf + self.n) / 2;
        while node > 0 {
            let opponent = self.tree[node];
            if opponent == UNSET {
                // First contestant to reach this match during a rebuild:
                // park here as the provisional loser and stop — the
                // sibling subtree will fight this match when it arrives.
                self.tree[node] = winner;
                return;
            }
            if better(opponent, winner) {
                self.tree[node] = winner;
                winner = opponent;
            }
            node /= 2;
        }
        self.tree[0] = winner;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drains `inputs` (each a sorted run) through a loser tree,
    /// tie-breaking by input index, and returns the merged sequence.
    fn merge_with_tree(inputs: &[Vec<u32>]) -> Vec<u32> {
        let mut pos = vec![0usize; inputs.len()];
        let better = |pos: &[usize], a: usize, b: usize| {
            let ka = inputs[a].get(pos[a]);
            let kb = inputs[b].get(pos[b]);
            match (ka, kb) {
                (Some(x), Some(y)) => (x, a) < (y, b),
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => a < b,
            }
        };
        let mut tree = LoserTree::new(inputs.len());
        tree.rebuild(|a, b| better(&pos, a, b));
        let mut out = Vec::new();
        loop {
            let w = tree.winner();
            match inputs[w].get(pos[w]) {
                Some(&v) => {
                    out.push(v);
                    pos[w] += 1;
                    tree.update(w, |a, b| better(&pos, a, b));
                }
                None => break,
            }
        }
        out
    }

    #[test]
    fn merges_like_sort_for_various_shapes() {
        let cases: Vec<Vec<Vec<u32>>> = vec![
            vec![vec![1, 3, 5]],
            vec![vec![1, 3], vec![2, 4]],
            vec![vec![], vec![2, 4], vec![]],
            vec![vec![5, 6, 7], vec![1, 2, 3], vec![4]],
            vec![vec![1, 1, 1], vec![1, 1], vec![1]],
            (0..9)
                .map(|i| (0..20).map(|e| e * 9 + i).collect())
                .collect(),
            vec![vec![], vec![], vec![]],
        ];
        for inputs in cases {
            let merged = merge_with_tree(&inputs);
            let mut expect: Vec<u32> = inputs.iter().flatten().copied().collect();
            expect.sort();
            assert_eq!(merged, expect, "inputs {inputs:?}");
        }
    }

    #[test]
    fn ties_go_to_lowest_index() {
        // Every input holds the same single key; winners must appear in
        // input order as each earlier input exhausts.
        let inputs: Vec<Vec<u32>> = vec![vec![7]; 5];
        let mut pos = vec![0usize; inputs.len()];
        let better = |pos: &[usize], a: usize, b: usize| {
            let ka = inputs[a].get(pos[a]);
            let kb = inputs[b].get(pos[b]);
            match (ka, kb) {
                (Some(x), Some(y)) => (x, a) < (y, b),
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => a < b,
            }
        };
        let mut tree = LoserTree::new(inputs.len());
        tree.rebuild(|a, b| better(&pos, a, b));
        let mut order = Vec::new();
        while inputs[tree.winner()].get(pos[tree.winner()]).is_some() {
            let w = tree.winner();
            order.push(w);
            pos[w] += 1;
            tree.update(w, |a, b| better(&pos, a, b));
        }
        assert_eq!(order, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn single_player_always_wins() {
        let mut tree = LoserTree::new(1);
        tree.rebuild(|_, _| unreachable!("no matches with one player"));
        assert_eq!(tree.winner(), 0);
        tree.update(0, |_, _| unreachable!());
        assert_eq!(tree.winner(), 0);
    }

    #[test]
    fn random_merges_match_sort() {
        // Deterministic LCG-driven fuzz over input counts and lengths.
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..200 {
            let n = (rng() % 12 + 1) as usize;
            let inputs: Vec<Vec<u32>> = (0..n)
                .map(|_| {
                    let len = (rng() % 20) as usize;
                    let mut v: Vec<u32> = (0..len).map(|_| (rng() % 50) as u32).collect();
                    v.sort();
                    v
                })
                .collect();
            let merged = merge_with_tree(&inputs);
            let mut expect: Vec<u32> = inputs.iter().flatten().copied().collect();
            expect.sort();
            assert_eq!(merged, expect);
        }
    }
}
