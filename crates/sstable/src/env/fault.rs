//! Fault-injecting storage environment.
//!
//! [`FaultEnv`] wraps any [`StorageEnv`] and models the failure surface a
//! real disk exposes, in the spirit of RocksDB's `FaultInjectionTestFS`:
//!
//! * **Power cuts with torn tails.** Every file created through the
//!   wrapper tracks its *durable prefix* — the byte length at the last
//!   successful `sync`. Directory operations (create, rename, remove) are
//!   journaled until the containing directory is synced via
//!   [`StorageEnv::sync_dir`]. [`FaultEnv::power_cut`] undoes all
//!   unsynced directory operations in reverse order and truncates each
//!   file to its durable prefix plus a seeded-random *torn tail* — an
//!   arbitrary byte-granularity prefix of the unsynced suffix, modeling a
//!   write that was partially on disk when power failed.
//! * **Deterministic I/O errors.** Per-[`FaultKind`] one-shot budgets
//!   (`inject_errors`) and seeded probabilistic rates (`fail_one_in`)
//!   make appends, syncs, reads, renames, creates, and dir ops fail with
//!   an injected `Io` error (ENOSPC-style for writes).
//! * **Media corruption.** Reads can flip a seeded-random bit in the
//!   returned buffer (`corrupt_reads_one_in`), exercising every checksum
//!   on the read path.
//!
//! All randomness flows from one splitmix64 stream seeded at
//! construction (plus a per-cut seed), so a failing schedule replays
//! bit-identically. The wrapper is `Clone`; clones share state, so tests
//! can keep a control handle while the store owns the `Arc<dyn
//! StorageEnv>` view.
//!
//! Semantics notes: files that already existed in the wrapped env before
//! the wrapper saw them are treated as fully durable. Handles opened
//! before a `power_cut` keep writing into detached buffers — the harness
//! is expected to drop the store (after `set_offline(true)` makes further
//! acknowledgements impossible) before cutting power and reopening.

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;

use super::{RandomAccessFile, StorageEnv, WritableFile};
use crate::{Error, Result};

/// The operation classes on which faults can be injected.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// `create_writable`
    Create,
    /// `WritableFile::append`
    Append,
    /// `WritableFile::sync`
    Sync,
    /// `RandomAccessFile::read_at`
    Read,
    /// `StorageEnv::rename`
    Rename,
    /// `StorageEnv::remove_file`
    RemoveFile,
    /// `StorageEnv::create_dir_all`
    CreateDir,
    /// `StorageEnv::sync_dir`
    SyncDir,
}

impl FaultKind {
    /// All fault kinds, for iteration in reports.
    pub const ALL: [FaultKind; 8] = [
        FaultKind::Create,
        FaultKind::Append,
        FaultKind::Sync,
        FaultKind::Read,
        FaultKind::Rename,
        FaultKind::RemoveFile,
        FaultKind::CreateDir,
        FaultKind::SyncDir,
    ];
}

/// What a [`FaultEnv::power_cut`] actually destroyed.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PowerCutReport {
    /// Unsynced directory operations rolled back.
    pub dir_ops_undone: usize,
    /// Files whose unsynced suffix was (partially) dropped.
    pub files_truncated: usize,
    /// Total unsynced bytes discarded across all files.
    pub bytes_dropped: u64,
    /// Bytes that survived inside torn tails (durable prefix excluded).
    pub torn_bytes_kept: u64,
}

/// splitmix64: tiny, seedable, and good enough for fault schedules.
#[derive(Debug)]
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-ish value in `[0, n)`; returns 0 when `n == 0`.
    fn below(&mut self, n: u64) -> u64 {
        if n == 0 {
            0
        } else {
            self.next() % n
        }
    }
}

/// An unsynced directory operation, journaled until `sync_dir`.
#[derive(Debug)]
enum DirOp {
    /// File created (possibly truncating `prev` = old content + old
    /// durable prefix). Undo: restore `prev` or remove the file.
    Create {
        path: PathBuf,
        prev: Option<(Vec<u8>, u64)>,
    },
    /// File renamed over `prev_to` (old target content + durable prefix,
    /// if any). Undo: move back and restore the clobbered target.
    Rename {
        from: PathBuf,
        to: PathBuf,
        prev_to: Option<(Vec<u8>, u64)>,
        from_synced: u64,
    },
    /// File removed. Undo: resurrect content with its durable prefix.
    Remove {
        path: PathBuf,
        content: Vec<u8>,
        synced_len: u64,
    },
}

impl DirOp {
    /// True when every directory this op touches is `dir`.
    fn contained_in(&self, dir: &Path) -> bool {
        let parent_is = |p: &Path| p.parent() == Some(dir);
        match self {
            DirOp::Create { path, .. } | DirOp::Remove { path, .. } => parent_is(path),
            DirOp::Rename { from, to, .. } => parent_is(from) && parent_is(to),
        }
    }
}

#[derive(Debug, Default)]
struct Counters {
    injected: HashMap<FaultKind, u64>,
    bits_flipped: u64,
}

struct FaultState {
    rng: SplitMix64,
    offline: bool,
    /// Durable prefix length per tracked file (created/renamed through us).
    synced_len: HashMap<PathBuf, u64>,
    dir_journal: Vec<DirOp>,
    fail_one_in: HashMap<FaultKind, u64>,
    fail_budget: HashMap<FaultKind, u64>,
    read_corrupt_one_in: u64,
    counters: Counters,
}

impl FaultState {
    /// Decides whether an operation of `kind` should fail now, consuming
    /// one-shot budget first, then rolling the seeded probability.
    fn should_fail(&mut self, kind: FaultKind) -> bool {
        if let Some(budget) = self.fail_budget.get_mut(&kind) {
            if *budget > 0 {
                *budget -= 1;
                *self.counters.injected.entry(kind).or_insert(0) += 1;
                return true;
            }
        }
        if let Some(&n) = self.fail_one_in.get(&kind) {
            if n > 0 && self.rng.below(n) == 0 {
                *self.counters.injected.entry(kind).or_insert(0) += 1;
                return true;
            }
        }
        false
    }
}

struct Shared {
    inner: Arc<dyn StorageEnv>,
    state: Mutex<FaultState>,
}

impl Shared {
    fn fault_err(&self, kind: FaultKind) -> Error {
        let msg = match kind {
            FaultKind::Append | FaultKind::Sync | FaultKind::Create => {
                format!("injected {kind:?} fault: no space left on device")
            }
            _ => format!("injected {kind:?} fault"),
        };
        Error::Io(io::Error::other(msg))
    }

    /// Fails with an injected error when offline or scheduled to fault.
    fn gate(&self, kind: FaultKind) -> Result<()> {
        let mut state = self.state.lock();
        if state.offline {
            return Err(Error::Io(io::Error::other(format!(
                "storage offline (power cut pending): {kind:?} rejected"
            ))));
        }
        if state.should_fail(kind) {
            return Err(self.fault_err(kind));
        }
        Ok(())
    }

    fn read_file(&self, path: &Path) -> Option<Vec<u8>> {
        let file = self.inner.open_random_access(path).ok()?;
        file.read_all().ok()
    }

    /// Replaces `path`'s content with `bytes`, bypassing journaling.
    fn write_file(&self, path: &Path, bytes: &[u8]) -> Result<()> {
        let mut w = self.inner.create_writable(path)?;
        if !bytes.is_empty() {
            w.append(bytes)?;
        }
        w.sync()
    }
}

/// Fault-injecting [`StorageEnv`] wrapper. See the module docs.
#[derive(Clone)]
pub struct FaultEnv {
    shared: Arc<Shared>,
}

impl FaultEnv {
    /// Wraps `inner`, seeding the fault schedule with `seed`.
    pub fn new(inner: Arc<dyn StorageEnv>, seed: u64) -> Self {
        Self {
            shared: Arc::new(Shared {
                inner,
                state: Mutex::new(FaultState {
                    rng: SplitMix64::new(seed ^ 0xFA17_FA17_FA17_FA17),
                    offline: false,
                    synced_len: HashMap::new(),
                    dir_journal: Vec::new(),
                    fail_one_in: HashMap::new(),
                    fail_budget: HashMap::new(),
                    read_corrupt_one_in: 0,
                    counters: Counters::default(),
                }),
            }),
        }
    }

    /// When offline, every mutating operation fails; reads still work.
    /// Used by crash harnesses to stop acknowledgements at the instant of
    /// a simulated crash, before the store is dropped and power is cut.
    pub fn set_offline(&self, offline: bool) {
        self.shared.state.lock().offline = offline;
    }

    /// True when the env is rejecting mutations.
    pub fn is_offline(&self) -> bool {
        self.shared.state.lock().offline
    }

    /// Makes roughly one in `n` operations of `kind` fail (0 disables).
    pub fn fail_one_in(&self, kind: FaultKind, n: u64) {
        self.shared.state.lock().fail_one_in.insert(kind, n);
    }

    /// Queues `count` guaranteed failures for `kind` (consumed first).
    pub fn inject_errors(&self, kind: FaultKind, count: u64) {
        *self
            .shared
            .state
            .lock()
            .fail_budget
            .entry(kind)
            .or_insert(0) += count;
    }

    /// Flips one seeded-random bit in roughly one of every `n` successful
    /// reads (0 disables).
    pub fn corrupt_reads_one_in(&self, n: u64) {
        self.shared.state.lock().read_corrupt_one_in = n;
    }

    /// Errors injected so far for `kind`.
    pub fn injected_errors(&self, kind: FaultKind) -> u64 {
        self.shared
            .state
            .lock()
            .counters
            .injected
            .get(&kind)
            .copied()
            .unwrap_or(0)
    }

    /// Errors injected so far across all kinds.
    pub fn total_injected_errors(&self) -> u64 {
        self.shared.state.lock().counters.injected.values().sum()
    }

    /// Bits flipped on reads so far.
    pub fn bits_flipped(&self) -> u64 {
        self.shared.state.lock().counters.bits_flipped
    }

    /// Durable prefix length of a tracked file, if known.
    pub fn synced_len(&self, path: &Path) -> Option<u64> {
        self.shared.state.lock().synced_len.get(path).copied()
    }

    /// Total bytes currently at risk: content beyond each tracked file's
    /// durable prefix.
    pub fn unsynced_bytes(&self) -> u64 {
        let state = self.shared.state.lock();
        let mut total = 0u64;
        for (path, &synced) in &state.synced_len {
            if let Ok(file) = self.shared.inner.open_random_access(path) {
                if let Ok(len) = file.len() {
                    total += len.saturating_sub(synced);
                }
            }
        }
        total
    }

    /// Simulates a power cut: rolls back every unsynced directory
    /// operation (newest first), then truncates each tracked file to its
    /// durable prefix plus a seeded-random torn tail drawn from `seed`.
    /// Afterwards the env is back online with a clean journal, ready for
    /// a recovery pass to reopen the store.
    pub fn power_cut(&self, seed: u64) -> Result<PowerCutReport> {
        let mut report = PowerCutReport::default();
        let mut state = self.shared.state.lock();
        let mut rng = SplitMix64::new(seed ^ 0x0DD_C0FF_EE00);

        let journal = std::mem::take(&mut state.dir_journal);
        report.dir_ops_undone = journal.len();
        for op in journal.into_iter().rev() {
            match op {
                DirOp::Create { path, prev } => {
                    match prev {
                        Some((bytes, synced)) => {
                            self.shared.write_file(&path, &bytes)?;
                            state.synced_len.insert(path, synced);
                        }
                        None => {
                            // Ignore NotFound: the file may have been
                            // renamed away and already rolled back.
                            let _ = self.shared.inner.remove_file(&path);
                            state.synced_len.remove(&path);
                        }
                    }
                }
                DirOp::Rename {
                    from,
                    to,
                    prev_to,
                    from_synced,
                } => {
                    if let Some(bytes) = self.shared.read_file(&to) {
                        self.shared.write_file(&from, &bytes)?;
                    }
                    match prev_to {
                        Some((bytes, synced)) => {
                            self.shared.write_file(&to, &bytes)?;
                            state.synced_len.insert(to, synced);
                        }
                        None => {
                            let _ = self.shared.inner.remove_file(&to);
                            state.synced_len.remove(&to);
                        }
                    }
                    state.synced_len.insert(from, from_synced);
                }
                DirOp::Remove {
                    path,
                    content,
                    synced_len,
                } => {
                    self.shared.write_file(&path, &content)?;
                    state.synced_len.insert(path, synced_len);
                }
            }
        }

        // Sort for a deterministic truncation order: which file draws
        // which torn-tail length must not depend on HashMap iteration.
        let mut paths: Vec<PathBuf> = state.synced_len.keys().cloned().collect();
        paths.sort();
        for path in paths {
            let synced = state.synced_len.get(&path).copied().unwrap_or(0);
            let Some(bytes) = self.shared.read_file(&path) else {
                continue;
            };
            let len = bytes.len() as u64;
            if len <= synced {
                continue;
            }
            let unsynced = len - synced;
            let torn = rng.below(unsynced + 1);
            let keep = (synced + torn) as usize;
            self.shared.write_file(&path, &bytes[..keep])?;
            report.files_truncated += 1;
            report.bytes_dropped += unsynced - torn;
            report.torn_bytes_kept += torn;
            state.synced_len.insert(path, keep as u64);
        }

        state.offline = false;
        Ok(report)
    }
}

// ---------------------------------------------------------------- files

struct FaultWritable {
    inner: Box<dyn WritableFile>,
    shared: Arc<Shared>,
    path: PathBuf,
    /// Bytes appended through this handle; the file was created fresh,
    /// so this is also the file length.
    len: u64,
}

impl WritableFile for FaultWritable {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        self.shared.gate(FaultKind::Append)?;
        self.inner.append(data)?;
        self.len += data.len() as u64;
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.inner.flush()
    }

    fn sync(&mut self) -> Result<()> {
        self.shared.gate(FaultKind::Sync)?;
        self.inner.sync()?;
        self.shared
            .state
            .lock()
            .synced_len
            .insert(self.path.clone(), self.len);
        Ok(())
    }

    fn bytes_written(&self) -> u64 {
        self.inner.bytes_written()
    }
}

struct FaultRandomAccess {
    inner: Box<dyn RandomAccessFile>,
    shared: Arc<Shared>,
}

impl RandomAccessFile for FaultRandomAccess {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<usize> {
        {
            let mut state = self.shared.state.lock();
            if state.should_fail(FaultKind::Read) {
                return Err(self.shared.fault_err(FaultKind::Read));
            }
        }
        let n = self.inner.read_at(offset, buf)?;
        if n > 0 {
            let mut state = self.shared.state.lock();
            let one_in = state.read_corrupt_one_in;
            if one_in > 0 && state.rng.below(one_in) == 0 {
                let idx = state.rng.below(n as u64) as usize;
                let bit = state.rng.below(8) as u32;
                buf[idx] ^= 1u8 << bit;
                state.counters.bits_flipped += 1;
            }
        }
        Ok(n)
    }

    fn len(&self) -> Result<u64> {
        self.inner.len()
    }
}

// ------------------------------------------------------------------ env

impl StorageEnv for FaultEnv {
    fn open_random_access(&self, path: &Path) -> Result<Box<dyn RandomAccessFile>> {
        let inner = self.shared.inner.open_random_access(path)?;
        Ok(Box::new(FaultRandomAccess {
            inner,
            shared: Arc::clone(&self.shared),
        }))
    }

    fn create_writable(&self, path: &Path) -> Result<Box<dyn WritableFile>> {
        self.shared.gate(FaultKind::Create)?;
        // Capture the clobbered file (if any) so a power cut can restore
        // it: until the directory is synced, the truncating create is not
        // durable either.
        let prev = if self.shared.inner.file_exists(path) {
            self.shared.read_file(path).map(|bytes| {
                let synced = self
                    .shared
                    .state
                    .lock()
                    .synced_len
                    .get(path)
                    .copied()
                    .unwrap_or(bytes.len() as u64);
                (bytes, synced)
            })
        } else {
            None
        };
        // DURABILITY-OK: fault-injection wrapper — tracking (and, on a
        // simulated cut, losing) unsynced creates is exactly its job.
        let inner = self.shared.inner.create_writable(path)?;
        {
            let mut state = self.shared.state.lock();
            state.dir_journal.push(DirOp::Create {
                path: path.to_path_buf(),
                prev,
            });
            state.synced_len.insert(path.to_path_buf(), 0);
        }
        Ok(Box::new(FaultWritable {
            inner,
            shared: Arc::clone(&self.shared),
            path: path.to_path_buf(),
            len: 0,
        }))
    }

    fn remove_file(&self, path: &Path) -> Result<()> {
        self.shared.gate(FaultKind::RemoveFile)?;
        let content = self.shared.read_file(path);
        self.shared.inner.remove_file(path)?;
        if let Some(content) = content {
            let mut state = self.shared.state.lock();
            let synced_len = state
                .synced_len
                .remove(path)
                .unwrap_or(content.len() as u64);
            state.dir_journal.push(DirOp::Remove {
                path: path.to_path_buf(),
                content,
                synced_len,
            });
        }
        Ok(())
    }

    fn create_dir_all(&self, path: &Path) -> Result<()> {
        self.shared.gate(FaultKind::CreateDir)?;
        self.shared.inner.create_dir_all(path)
    }

    fn list_dir(&self, path: &Path) -> Result<Vec<String>> {
        self.shared.inner.list_dir(path)
    }

    fn file_exists(&self, path: &Path) -> bool {
        self.shared.inner.file_exists(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        self.shared.gate(FaultKind::Rename)?;
        let prev_to = if self.shared.inner.file_exists(to) {
            self.shared.read_file(to).map(|bytes| {
                let synced = self
                    .shared
                    .state
                    .lock()
                    .synced_len
                    .get(to)
                    .copied()
                    .unwrap_or(bytes.len() as u64);
                (bytes, synced)
            })
        } else {
            None
        };
        // Untracked source files predate the wrapper and count as fully
        // durable.
        let from_len = self
            .shared
            .inner
            .open_random_access(from)
            .and_then(|f| f.len())
            .unwrap_or(0);
        // DURABILITY-OK: pass-through primitive — losing an unsynced
        // rename at a simulated cut is the behavior under test.
        self.shared.inner.rename(from, to)?;
        let mut state = self.shared.state.lock();
        let from_synced = state.synced_len.remove(from).unwrap_or(from_len);
        state.synced_len.insert(to.to_path_buf(), from_synced);
        state.dir_journal.push(DirOp::Rename {
            from: from.to_path_buf(),
            to: to.to_path_buf(),
            prev_to,
            from_synced,
        });
        Ok(())
    }

    fn sync_dir(&self, path: &Path) -> Result<()> {
        self.shared.gate(FaultKind::SyncDir)?;
        self.shared.inner.sync_dir(path)?;
        self.shared
            .state
            .lock()
            .dir_journal
            .retain(|op| !op.contained_in(path));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::super::MemEnv;
    use super::*;

    fn fault_env(seed: u64) -> FaultEnv {
        FaultEnv::new(Arc::new(MemEnv::new()), seed)
    }

    fn write(env: &FaultEnv, path: &Path, data: &[u8], sync: bool) {
        let mut w = env.create_writable(path).unwrap();
        w.append(data).unwrap();
        if sync {
            w.sync().unwrap();
        }
    }

    fn read(env: &FaultEnv, path: &Path) -> Vec<u8> {
        env.open_random_access(path).unwrap().read_all().unwrap()
    }

    #[test]
    fn power_cut_keeps_synced_prefix_drops_unsynced() {
        let env = fault_env(1);
        let p = Path::new("/db/f1");
        let mut w = env.create_writable(p).unwrap();
        w.append(b"durable-").unwrap();
        w.sync().unwrap();
        w.append(b"volatile").unwrap();
        drop(w);
        env.sync_dir(Path::new("/db")).unwrap();
        assert_eq!(env.unsynced_bytes(), 8);

        let report = env.power_cut(7).unwrap();
        let survived = read(&env, p);
        assert!(survived.starts_with(b"durable-"));
        // Torn tail: whatever survives past the durable prefix must be a
        // prefix of the unsynced bytes, never reordered or invented.
        assert!(b"durable-volatile".starts_with(survived.as_slice()));
        assert_eq!(report.bytes_dropped + report.torn_bytes_kept, 8);
        assert_eq!(env.unsynced_bytes(), 0);
    }

    #[test]
    fn power_cut_is_deterministic_per_seed() {
        let lens: Vec<usize> = (0..2)
            .map(|_| {
                let env = fault_env(42);
                let p = Path::new("/db/f");
                let mut w = env.create_writable(p).unwrap();
                w.append(&[0xAB; 100]).unwrap();
                w.sync().unwrap();
                w.append(&[0xCD; 1000]).unwrap();
                drop(w);
                env.sync_dir(Path::new("/db")).unwrap();
                env.power_cut(9).unwrap();
                read(&env, p).len()
            })
            .collect();
        assert_eq!(lens[0], lens[1]);
        assert!(lens[0] >= 100 && lens[0] <= 1100);
    }

    #[test]
    fn unsynced_create_vanishes_on_power_cut() {
        let env = fault_env(2);
        let p = Path::new("/db/new");
        write(&env, p, b"data", true); // file synced, dir entry not
        env.power_cut(3).unwrap();
        assert!(!env.file_exists(p));
    }

    #[test]
    fn synced_dir_makes_create_durable() {
        let env = fault_env(2);
        let p = Path::new("/db/new");
        write(&env, p, b"data", true);
        env.sync_dir(Path::new("/db")).unwrap();
        env.power_cut(3).unwrap();
        assert_eq!(read(&env, p), b"data");
    }

    #[test]
    fn unsynced_rename_rolls_back() {
        let env = fault_env(3);
        let cur = Path::new("/db/CURRENT");
        let tmp = Path::new("/db/CURRENT.tmp");
        write(&env, cur, b"MANIFEST-1", true);
        env.sync_dir(Path::new("/db")).unwrap();

        write(&env, tmp, b"MANIFEST-2", true);
        env.rename(tmp, cur).unwrap();
        assert_eq!(read(&env, cur), b"MANIFEST-2");

        env.power_cut(11).unwrap();
        // The swap was never synced: the old CURRENT is back and the tmp
        // file is gone (its create was unsynced too).
        assert_eq!(read(&env, cur), b"MANIFEST-1");
        assert!(!env.file_exists(tmp));
    }

    #[test]
    fn synced_rename_survives() {
        let env = fault_env(3);
        let cur = Path::new("/db/CURRENT");
        let tmp = Path::new("/db/CURRENT.tmp");
        write(&env, cur, b"MANIFEST-1", true);
        write(&env, tmp, b"MANIFEST-2", true);
        env.rename(tmp, cur).unwrap();
        env.sync_dir(Path::new("/db")).unwrap();
        env.power_cut(11).unwrap();
        assert_eq!(read(&env, cur), b"MANIFEST-2");
    }

    #[test]
    fn unsynced_remove_resurrects() {
        let env = fault_env(4);
        let p = Path::new("/db/table");
        write(&env, p, b"rows", true);
        env.sync_dir(Path::new("/db")).unwrap();
        env.remove_file(p).unwrap();
        assert!(!env.file_exists(p));
        env.power_cut(5).unwrap();
        assert_eq!(read(&env, p), b"rows");
    }

    #[test]
    fn injected_errors_fire_and_count() {
        let env = fault_env(5);
        env.inject_errors(FaultKind::Append, 1);
        let mut w = env.create_writable(Path::new("/f")).unwrap();
        assert!(w.append(b"x").is_err());
        assert!(w.append(b"x").is_ok());
        assert_eq!(env.injected_errors(FaultKind::Append), 1);

        env.inject_errors(FaultKind::Sync, 1);
        assert!(w.sync().is_err());
        assert!(w.sync().is_ok());
        assert_eq!(env.total_injected_errors(), 2);

        env.inject_errors(FaultKind::Rename, 1);
        assert!(env.rename(Path::new("/f"), Path::new("/g")).is_err());
        env.inject_errors(FaultKind::Create, 1);
        assert!(env.create_writable(Path::new("/h")).is_err());
    }

    #[test]
    fn probabilistic_errors_fire_eventually() {
        let env = fault_env(6);
        env.fail_one_in(FaultKind::Append, 4);
        let mut w = env.create_writable(Path::new("/f")).unwrap();
        let mut failures = 0;
        for _ in 0..256 {
            if w.append(b"y").is_err() {
                failures += 1;
            }
        }
        assert!(failures > 0);
        assert_eq!(env.injected_errors(FaultKind::Append), failures);
    }

    #[test]
    fn read_corruption_flips_exactly_one_bit() {
        let env = fault_env(7);
        let p = Path::new("/f");
        write(&env, p, &[0u8; 64], true);
        env.corrupt_reads_one_in(1); // every read
        let f = env.open_random_access(p).unwrap();
        let mut buf = [0u8; 64];
        let n = f.read_at(0, &mut buf).unwrap();
        assert_eq!(n, 64);
        let ones: u32 = buf.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1);
        assert_eq!(env.bits_flipped(), 1);
    }

    #[test]
    fn offline_rejects_mutations_but_allows_reads() {
        let env = fault_env(8);
        let p = Path::new("/f");
        write(&env, p, b"ok", true);
        env.set_offline(true);
        assert!(env.is_offline());
        assert!(env.create_writable(Path::new("/g")).is_err());
        assert!(env.rename(p, Path::new("/g")).is_err());
        assert!(env.remove_file(p).is_err());
        assert!(env.sync_dir(Path::new("/")).is_err());
        assert_eq!(read(&env, p), b"ok");
        // power_cut revives the env.
        env.power_cut(1).unwrap();
        assert!(!env.is_offline());
        assert!(env.create_writable(Path::new("/g")).is_ok());
    }

    #[test]
    fn truncating_create_restores_previous_content_on_cut() {
        let env = fault_env(9);
        let p = Path::new("/db/f");
        write(&env, p, b"old-durable", true);
        env.sync_dir(Path::new("/db")).unwrap();
        // Re-create (truncate) without syncing the directory.
        write(&env, p, b"new", true);
        env.power_cut(2).unwrap();
        assert_eq!(read(&env, p), b"old-durable");
    }
}
