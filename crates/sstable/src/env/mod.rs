//! Storage abstraction: the minimal file interfaces tables and logs need,
//! with a real-filesystem implementation, an in-memory one for tests and
//! simulation, and a fault-injecting wrapper ([`FaultEnv`]) that models
//! power cuts, torn writes, I/O errors, and media corruption.

pub mod fault;

pub use fault::{FaultEnv, FaultKind, PowerCutReport};

use std::collections::HashMap;
// FS-OK: this module *is* the storage backend; every direct filesystem
// touch in the workspace is supposed to live here.
use std::fs;
use std::io::Write;
#[cfg(not(unix))]
use std::io::{Read, Seek, SeekFrom};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::Result;

/// Positional reads over an immutable file.
pub trait RandomAccessFile: Send + Sync {
    /// Reads up to `buf.len()` bytes at `offset`, returning the bytes read.
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<usize>;
    /// Total file length.
    fn len(&self) -> Result<u64>;
    /// True if the file is empty.
    fn is_empty(&self) -> Result<bool> {
        Ok(self.len()? == 0)
    }
    /// Reads the whole file into memory.
    fn read_all(&self) -> Result<Vec<u8>> {
        let len = self.len()? as usize;
        let mut buf = vec![0u8; len];
        let n = self.read_at(0, &mut buf)?;
        buf.truncate(n);
        Ok(buf)
    }
}

/// Append-only writes.
pub trait WritableFile: Send {
    /// Appends `data` to the file.
    fn append(&mut self, data: &[u8]) -> Result<()>;
    /// Flushes buffered data to the OS.
    fn flush(&mut self) -> Result<()>;
    /// Durably persists the file (fsync for real files; no-op in memory).
    fn sync(&mut self) -> Result<()>;
    /// Bytes written so far.
    fn bytes_written(&self) -> u64;
}

/// Factory for files plus the directory operations the store needs.
pub trait StorageEnv: Send + Sync {
    /// Opens a file for random-access reading.
    fn open_random_access(&self, path: &Path) -> Result<Box<dyn RandomAccessFile>>;
    /// Creates (truncating) a file for appending.
    fn create_writable(&self, path: &Path) -> Result<Box<dyn WritableFile>>;
    /// Deletes a file; missing files are an error.
    fn remove_file(&self, path: &Path) -> Result<()>;
    /// Creates a directory and parents; existing directories are fine.
    fn create_dir_all(&self, path: &Path) -> Result<()>;
    /// Lists file names (not paths) in a directory.
    fn list_dir(&self, path: &Path) -> Result<Vec<String>>;
    /// True if the file exists.
    fn file_exists(&self, path: &Path) -> bool;
    /// Atomically replaces `to` with `from`.
    fn rename(&self, from: &Path, to: &Path) -> Result<()>;
    /// Durably persists a directory's entries (fsync on real filesystems;
    /// no-op in memory). Callers must invoke this after `rename` or
    /// `create_writable` when the directory entry itself — not just the
    /// file contents — has to survive a power cut (CURRENT swaps, fresh
    /// WAL/MANIFEST files).
    fn sync_dir(&self, _path: &Path) -> Result<()> {
        Ok(())
    }
}

// ---------------------------------------------------------------- std fs

/// Real-filesystem environment.
#[derive(Debug, Default, Clone, Copy)]
pub struct StdEnv;

struct StdRandomAccess {
    file: fs::File,
}

impl RandomAccessFile for StdRandomAccess {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<usize> {
        #[cfg(unix)]
        {
            use std::os::unix::fs::FileExt;
            Ok(self.file.read_at(buf, offset)?)
        }
        #[cfg(not(unix))]
        {
            let mut f = self.file.try_clone()?;
            f.seek(SeekFrom::Start(offset))?;
            Ok(f.read(buf)?)
        }
    }

    fn len(&self) -> Result<u64> {
        Ok(self.file.metadata()?.len())
    }
}

struct StdWritable {
    file: std::io::BufWriter<fs::File>,
    written: u64,
}

impl WritableFile for StdWritable {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        self.file.write_all(data)?;
        self.written += data.len() as u64;
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        self.file.flush()?;
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        self.file.flush()?;
        self.file.get_ref().sync_data()?;
        Ok(())
    }

    fn bytes_written(&self) -> u64 {
        self.written
    }
}

impl StorageEnv for StdEnv {
    fn open_random_access(&self, path: &Path) -> Result<Box<dyn RandomAccessFile>> {
        Ok(Box::new(StdRandomAccess {
            file: fs::File::open(path)?,
        }))
    }

    fn create_writable(&self, path: &Path) -> Result<Box<dyn WritableFile>> {
        let file = fs::OpenOptions::new()
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        Ok(Box::new(StdWritable {
            file: std::io::BufWriter::new(file),
            written: 0,
        }))
    }

    fn remove_file(&self, path: &Path) -> Result<()> {
        fs::remove_file(path)?;
        Ok(())
    }

    fn create_dir_all(&self, path: &Path) -> Result<()> {
        fs::create_dir_all(path)?;
        Ok(())
    }

    fn list_dir(&self, path: &Path) -> Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in fs::read_dir(path)? {
            names.push(entry?.file_name().to_string_lossy().into_owned());
        }
        Ok(names)
    }

    fn file_exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        // DURABILITY-OK: backend primitive — syncing the payload before
        // the install point is the caller's contract; the dir sync below
        // publishes the entry itself.
        fs::rename(from, to)?;
        // A rename is only durable once the containing directory is
        // synced; do it eagerly so CURRENT swaps survive power cuts even
        // if a caller forgets the explicit sync_dir.
        if let Some(parent) = to.parent() {
            self.sync_dir(parent)?;
        }
        Ok(())
    }

    fn sync_dir(&self, path: &Path) -> Result<()> {
        #[cfg(unix)]
        {
            fs::File::open(path)?.sync_all()?;
        }
        #[cfg(not(unix))]
        {
            let _ = path;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------- memory

type FileMap = HashMap<PathBuf, Arc<Mutex<Vec<u8>>>>;

/// In-memory environment: fast, hermetic, and usable from simulations.
#[derive(Default, Clone)]
pub struct MemEnv {
    files: Arc<Mutex<FileMap>>,
}

impl MemEnv {
    /// Creates an empty in-memory filesystem.
    pub fn new() -> Self {
        Self::default()
    }

    /// Total bytes across all files (test/diagnostic helper).
    pub fn total_bytes(&self) -> usize {
        self.files.lock().values().map(|f| f.lock().len()).sum()
    }
}

struct MemRandomAccess {
    data: Arc<Mutex<Vec<u8>>>,
}

impl RandomAccessFile for MemRandomAccess {
    fn read_at(&self, offset: u64, buf: &mut [u8]) -> Result<usize> {
        let data = self.data.lock();
        let offset = offset as usize;
        if offset >= data.len() {
            return Ok(0);
        }
        let n = buf.len().min(data.len() - offset);
        buf[..n].copy_from_slice(&data[offset..offset + n]);
        Ok(n)
    }

    fn len(&self) -> Result<u64> {
        Ok(self.data.lock().len() as u64)
    }
}

struct MemWritable {
    data: Arc<Mutex<Vec<u8>>>,
}

impl WritableFile for MemWritable {
    fn append(&mut self, data: &[u8]) -> Result<()> {
        self.data.lock().extend_from_slice(data);
        Ok(())
    }

    fn flush(&mut self) -> Result<()> {
        Ok(())
    }

    fn sync(&mut self) -> Result<()> {
        Ok(())
    }

    fn bytes_written(&self) -> u64 {
        self.data.lock().len() as u64
    }
}

impl StorageEnv for MemEnv {
    fn open_random_access(&self, path: &Path) -> Result<Box<dyn RandomAccessFile>> {
        let files = self.files.lock();
        let data = files.get(path).ok_or_else(|| {
            crate::Error::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("no such mem file: {}", path.display()),
            ))
        })?;
        Ok(Box::new(MemRandomAccess {
            data: Arc::clone(data),
        }))
    }

    fn create_writable(&self, path: &Path) -> Result<Box<dyn WritableFile>> {
        let data = Arc::new(Mutex::new(Vec::new()));
        self.files
            .lock()
            .insert(path.to_path_buf(), Arc::clone(&data));
        Ok(Box::new(MemWritable { data }))
    }

    fn remove_file(&self, path: &Path) -> Result<()> {
        self.files.lock().remove(path).ok_or_else(|| {
            crate::Error::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("no such mem file: {}", path.display()),
            ))
        })?;
        Ok(())
    }

    fn create_dir_all(&self, _path: &Path) -> Result<()> {
        Ok(())
    }

    fn list_dir(&self, path: &Path) -> Result<Vec<String>> {
        let files = self.files.lock();
        let mut names = Vec::new();
        for p in files.keys() {
            if p.parent() == Some(path) {
                if let Some(name) = p.file_name() {
                    names.push(name.to_string_lossy().into_owned());
                }
            }
        }
        Ok(names)
    }

    fn file_exists(&self, path: &Path) -> bool {
        self.files.lock().contains_key(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> Result<()> {
        let mut files = self.files.lock();
        let data = files.remove(from).ok_or_else(|| {
            crate::Error::Io(std::io::Error::new(
                std::io::ErrorKind::NotFound,
                format!("no such mem file: {}", from.display()),
            ))
        })?;
        files.insert(to.to_path_buf(), data);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exercise_env(env: &dyn StorageEnv, root: &Path) {
        env.create_dir_all(root).unwrap();
        let path = root.join("file.dat");

        let mut w = env.create_writable(&path).unwrap();
        w.append(b"hello ").unwrap();
        w.append(b"world").unwrap();
        w.sync().unwrap();
        assert_eq!(w.bytes_written(), 11);
        drop(w);

        assert!(env.file_exists(&path));
        let r = env.open_random_access(&path).unwrap();
        assert_eq!(r.len().unwrap(), 11);
        let mut buf = [0u8; 5];
        assert_eq!(r.read_at(6, &mut buf).unwrap(), 5);
        assert_eq!(&buf, b"world");
        assert_eq!(r.read_all().unwrap(), b"hello world");
        // Read past EOF returns fewer bytes.
        let mut buf = [0u8; 32];
        let n = r.read_at(6, &mut buf).unwrap();
        assert_eq!(&buf[..n], b"world");

        let names = env.list_dir(root).unwrap();
        assert!(names.contains(&"file.dat".to_string()));

        let path2 = root.join("renamed.dat");
        env.rename(&path, &path2).unwrap();
        assert!(!env.file_exists(&path));
        assert!(env.file_exists(&path2));
        env.sync_dir(root).unwrap();

        env.remove_file(&path2).unwrap();
        assert!(!env.file_exists(&path2));
        assert!(env.remove_file(&path2).is_err());
    }

    #[test]
    fn mem_env_contract() {
        let env = MemEnv::new();
        exercise_env(&env, Path::new("/memtest"));
    }

    #[test]
    fn std_env_contract() {
        let dir = std::env::temp_dir().join(format!("sstable-env-test-{}", std::process::id()));
        let env = StdEnv;
        exercise_env(&env, &dir);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn create_truncates_existing() {
        let env = MemEnv::new();
        let p = Path::new("/f");
        let mut w = env.create_writable(p).unwrap();
        w.append(b"aaaa").unwrap();
        drop(w);
        let w = env.create_writable(p).unwrap();
        drop(w);
        assert_eq!(env.open_random_access(p).unwrap().len().unwrap(), 0);
    }
}
