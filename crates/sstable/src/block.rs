//! Immutable block reader and its iterator (restart-point binary search +
//! sequential entry decoding).

use std::cmp::Ordering;
use std::sync::Arc;

use bytes::Bytes;

use crate::coding::{decode_fixed32, get_varint32};
use crate::comparator::Comparator;
use crate::{corruption, Result};

/// An immutable, decoded-on-demand block (data or index).
#[derive(Clone)]
pub struct Block {
    /// Entry bytes followed by the restart array and count.
    contents: Bytes,
    /// Offset of the restart array.
    restart_offset: usize,
    /// Number of restart points.
    num_restarts: u32,
}

impl Block {
    /// Wraps decompressed block contents, validating the restart trailer.
    pub fn new(contents: Bytes) -> Result<Block> {
        if contents.len() < 4 {
            return Err(corruption("block too small for restart count"));
        }
        let num_restarts = decode_fixed32(&contents[contents.len() - 4..]);
        let max_restarts = (contents.len() as u64 - 4) / 4;
        if u64::from(num_restarts) > max_restarts {
            return Err(corruption(format!(
                "restart count {num_restarts} exceeds block capacity"
            )));
        }
        let restart_offset = contents.len() - 4 - num_restarts as usize * 4;
        Ok(Block {
            contents,
            restart_offset,
            num_restarts,
        })
    }

    /// Size of the raw block contents in bytes.
    pub fn size(&self) -> usize {
        self.contents.len()
    }

    /// The raw (uncompressed) block contents, including the restart array.
    /// Used by the FPGA host interface to relocate blocks into device
    /// memory images.
    pub fn contents(&self) -> &Bytes {
        &self.contents
    }

    /// Number of restart points (≥1 for non-empty blocks).
    pub fn num_restarts(&self) -> u32 {
        self.num_restarts
    }

    fn restart_point(&self, i: u32) -> usize {
        decode_fixed32(&self.contents[self.restart_offset + i as usize * 4..]) as usize
    }

    /// Creates an iterator over this block.
    pub fn iter(&self, cmp: Arc<dyn Comparator>) -> BlockIter {
        BlockIter {
            block: self.clone(),
            cmp,
            current: self.restart_offset,
            restart_index: self.num_restarts,
            key: Vec::new(),
            value_range: (0, 0),
            corrupt: false,
        }
    }
}

/// Iterator over one block's entries.
///
/// Maintains the current entry's key (materialized, since prefix
/// compression means the key bytes are not contiguous in the block) and a
/// range pointing at the value bytes inside the block.
pub struct BlockIter {
    block: Block,
    cmp: Arc<dyn Comparator>,
    /// Offset of the current entry; `restart_offset` means "past the end".
    current: usize,
    /// Restart block containing `current`.
    restart_index: u32,
    key: Vec<u8>,
    value_range: (usize, usize),
    corrupt: bool,
}

impl BlockIter {
    /// True if positioned on an entry.
    pub fn valid(&self) -> bool {
        !self.corrupt && self.current < self.block.restart_offset
    }

    /// True if the iterator hit a malformed entry.
    pub fn corrupted(&self) -> bool {
        self.corrupt
    }

    /// Current key (full, reconstructed from prefixes).
    pub fn key(&self) -> &[u8] {
        debug_assert!(self.valid());
        &self.key
    }

    /// Current value.
    pub fn value(&self) -> &[u8] {
        debug_assert!(self.valid());
        &self.block.contents[self.value_range.0..self.value_range.1]
    }

    /// Positions at the first entry.
    pub fn seek_to_first(&mut self) {
        if self.block.num_restarts == 0 || self.block.restart_offset == 0 {
            self.mark_exhausted();
            return;
        }
        self.seek_to_restart(0);
        self.parse_next_entry();
    }

    /// Positions at the last entry.
    pub fn seek_to_last(&mut self) {
        if self.block.num_restarts == 0 || self.block.restart_offset == 0 {
            self.mark_exhausted();
            return;
        }
        self.seek_to_restart(self.block.num_restarts - 1);
        // Walk forward to the final entry.
        loop {
            if !self.parse_next_entry() {
                return;
            }
            if self.next_offset() >= self.block.restart_offset {
                return; // positioned on the last entry
            }
            self.current = self.next_offset();
        }
    }

    /// Positions at the first entry with key >= `target`.
    pub fn seek(&mut self, target: &[u8]) {
        if self.block.num_restarts == 0 || self.block.restart_offset == 0 {
            self.mark_exhausted();
            return;
        }
        // Binary search over restart points: find the last restart whose
        // key is < target.
        let mut left = 0u32;
        let mut right = self.block.num_restarts - 1;
        while left < right {
            let mid = (left + right).div_ceil(2);
            let offset = self.block.restart_point(mid);
            match self.decode_restart_key(offset) {
                Some(key_range) => {
                    let key = &self.block.contents[key_range.0..key_range.1];
                    if self.cmp.compare(key, target) == Ordering::Less {
                        left = mid;
                    } else {
                        right = mid - 1;
                    }
                }
                None => {
                    self.corrupt = true;
                    return;
                }
            }
        }
        self.seek_to_restart(left);
        // Linear scan within the restart block.
        loop {
            if !self.parse_next_entry() {
                return;
            }
            if self.cmp.compare(&self.key, target) != Ordering::Less {
                return;
            }
            let next = self.next_offset();
            if next >= self.block.restart_offset {
                self.mark_exhausted();
                return;
            }
            self.current = next;
            self.maybe_advance_restart_index();
        }
    }

    /// Advances to the next entry.
    pub fn next(&mut self) {
        debug_assert!(self.valid());
        let next = self.next_offset();
        if next >= self.block.restart_offset {
            self.mark_exhausted();
            return;
        }
        self.current = next;
        self.maybe_advance_restart_index();
        self.parse_next_entry();
    }

    /// Steps back to the previous entry (re-scans from the prior restart).
    pub fn prev(&mut self) {
        debug_assert!(self.valid());
        let original = self.current;
        // Find the restart point strictly before the current entry.
        while self.block.restart_point(self.restart_index) >= original {
            if self.restart_index == 0 {
                self.mark_exhausted();
                return;
            }
            self.restart_index -= 1;
        }
        self.seek_to_restart(self.restart_index);
        loop {
            if !self.parse_next_entry() {
                return;
            }
            if self.next_offset() >= original {
                return;
            }
            self.current = self.next_offset();
        }
    }

    fn mark_exhausted(&mut self) {
        self.current = self.block.restart_offset;
        self.restart_index = self.block.num_restarts;
    }

    fn next_offset(&self) -> usize {
        self.value_range.1
    }

    fn seek_to_restart(&mut self, index: u32) {
        self.key.clear();
        self.restart_index = index;
        self.current = self.block.restart_point(index);
        self.value_range = (self.current, self.current);
    }

    fn maybe_advance_restart_index(&mut self) {
        while self.restart_index + 1 < self.block.num_restarts
            && self.block.restart_point(self.restart_index + 1) <= self.current
        {
            self.restart_index += 1;
        }
    }

    /// Decodes the entry at `self.current` into `key`/`value_range`.
    /// Returns false (and flags corruption or exhaustion) on failure.
    fn parse_next_entry(&mut self) -> bool {
        if self.current >= self.block.restart_offset {
            self.mark_exhausted();
            return false;
        }
        let data = &self.block.contents[..self.block.restart_offset];
        let mut p = self.current;
        let Some((shared, n1)) = get_varint32(&data[p..]) else {
            self.corrupt = true;
            return false;
        };
        p += n1;
        let Some((non_shared, n2)) = get_varint32(&data[p..]) else {
            self.corrupt = true;
            return false;
        };
        p += n2;
        let Some((value_len, n3)) = get_varint32(&data[p..]) else {
            self.corrupt = true;
            return false;
        };
        p += n3;
        let (shared, non_shared, value_len) =
            (shared as usize, non_shared as usize, value_len as usize);
        if shared > self.key.len() || p + non_shared + value_len > data.len() {
            self.corrupt = true;
            return false;
        }
        self.key.truncate(shared);
        self.key.extend_from_slice(&data[p..p + non_shared]);
        self.value_range = (p + non_shared, p + non_shared + value_len);
        true
    }

    /// Decodes just the key range of a restart entry (shared must be 0).
    fn decode_restart_key(&self, offset: usize) -> Option<(usize, usize)> {
        let data = &self.block.contents[..self.block.restart_offset];
        let mut p = offset;
        let (shared, n1) = get_varint32(&data[p..])?;
        p += n1;
        let (non_shared, n2) = get_varint32(&data[p..])?;
        p += n2;
        let (_value_len, n3) = get_varint32(&data[p..])?;
        p += n3;
        if shared != 0 || p + non_shared as usize > data.len() {
            return None;
        }
        Some((p, p + non_shared as usize))
    }
}

/// Forward-only, allocation-free cursor over one block's entries.
///
/// Unlike [`BlockIter`], the cursor does not own the block bytes: it is
/// [`BlockCursor::reset`] against a `contents` slice, and every
/// [`BlockCursor::advance`] / [`BlockCursor::value`] call takes the *same*
/// slice again. That lets callers keep block contents in a reusable
/// decompression buffer — or borrow them straight out of a larger memory
/// region — and decode entries with zero per-block heap allocation; the
/// prefix-reconstructed key buffer is reused across blocks. Passing a
/// different slice than the one `reset` saw yields garbage entries or a
/// `corrupted` cursor, never undefined behavior (all accesses are bounds-
/// checked).
///
/// The cursor deliberately supports only what a streaming decoder needs:
/// no seeks, no backward iteration, no restart-point binary search.
#[derive(Default)]
pub struct BlockCursor {
    /// End of the entry area (= offset of the restart array).
    entries_end: usize,
    /// Offset of the next entry to parse.
    next: usize,
    /// Current key, reconstructed from shared prefixes.
    key: Vec<u8>,
    /// Current value bytes within the contents slice.
    value_range: (usize, usize),
    valid: bool,
    corrupt: bool,
}

impl BlockCursor {
    /// Creates a cursor positioned on nothing; `reset` it onto a block.
    pub fn new() -> Self {
        BlockCursor::default()
    }

    /// Re-targets the cursor at the start of `contents` (a full block:
    /// entries + restart array + count), keeping the key buffer's
    /// capacity. Fails on a malformed restart trailer.
    pub fn reset(&mut self, contents: &[u8]) -> Result<()> {
        if contents.len() < 4 {
            return Err(corruption("block too small for restart count"));
        }
        let num_restarts = decode_fixed32(&contents[contents.len() - 4..]);
        let max_restarts = (contents.len() as u64 - 4) / 4;
        if u64::from(num_restarts) > max_restarts {
            return Err(corruption(format!(
                "restart count {num_restarts} exceeds block capacity"
            )));
        }
        self.entries_end = contents.len() - 4 - num_restarts as usize * 4;
        self.next = 0;
        self.key.clear();
        self.value_range = (0, 0);
        self.valid = false;
        self.corrupt = false;
        Ok(())
    }

    /// True when positioned on an entry.
    pub fn valid(&self) -> bool {
        self.valid
    }

    /// True if the cursor hit a malformed entry.
    pub fn corrupted(&self) -> bool {
        self.corrupt
    }

    /// Moves to the next entry of `contents` (the slice `reset` saw).
    /// Returns false at the end of the block or on corruption.
    pub fn advance(&mut self, contents: &[u8]) -> bool {
        let end = self.entries_end.min(contents.len());
        if self.next >= end {
            self.valid = false;
            return false;
        }
        let data = &contents[..end];
        let mut p = self.next;
        let Some((shared, n1)) = get_varint32(&data[p..]) else {
            return self.fail();
        };
        p += n1;
        let Some((non_shared, n2)) = get_varint32(&data[p..]) else {
            return self.fail();
        };
        p += n2;
        let Some((value_len, n3)) = get_varint32(&data[p..]) else {
            return self.fail();
        };
        p += n3;
        let (shared, non_shared, value_len) =
            (shared as usize, non_shared as usize, value_len as usize);
        if shared > self.key.len() || p + non_shared + value_len > data.len() {
            return self.fail();
        }
        self.key.truncate(shared);
        self.key.extend_from_slice(&data[p..p + non_shared]);
        self.value_range = (p + non_shared, p + non_shared + value_len);
        self.next = self.value_range.1;
        self.valid = true;
        true
    }

    fn fail(&mut self) -> bool {
        self.corrupt = true;
        self.valid = false;
        false
    }

    /// Current key (full, reconstructed from prefixes).
    pub fn key(&self) -> &[u8] {
        debug_assert!(self.valid);
        &self.key
    }

    /// Current value within `contents` (the slice `reset` saw).
    pub fn value<'a>(&self, contents: &'a [u8]) -> &'a [u8] {
        debug_assert!(self.valid);
        &contents[self.value_range.0..self.value_range.1]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block_builder::BlockBuilder;
    use crate::comparator::BytewiseComparator;

    #[allow(clippy::type_complexity)]
    fn sample_block(n: usize, interval: usize) -> (Block, Vec<(Vec<u8>, Vec<u8>)>) {
        let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..n)
            .map(|i| {
                (
                    format!("key{i:05}").into_bytes(),
                    format!("value-{i}").into_bytes(),
                )
            })
            .collect();
        let mut b = BlockBuilder::new(interval);
        for (k, v) in &entries {
            b.add(k, v);
        }
        (Block::new(b.finish().to_vec().into()).unwrap(), entries)
    }

    #[test]
    fn seek_finds_exact_and_between() {
        let (block, entries) = sample_block(100, 16);
        let mut it = block.iter(Arc::new(BytewiseComparator));
        // Exact hits.
        for (k, v) in &entries {
            it.seek(k);
            assert!(it.valid());
            assert_eq!(it.key(), &k[..]);
            assert_eq!(it.value(), &v[..]);
        }
        // Between keys: "key00010x" -> key00011.
        it.seek(b"key00010x");
        assert!(it.valid());
        assert_eq!(it.key(), b"key00011");
        // Before all.
        it.seek(b"aaa");
        assert!(it.valid());
        assert_eq!(it.key(), b"key00000");
        // Past all.
        it.seek(b"zzz");
        assert!(!it.valid());
    }

    #[test]
    fn cursor_agrees_with_iterator() {
        let mut cursor = BlockCursor::new();
        for interval in [1usize, 2, 7, 16, 64] {
            let (block, entries) = sample_block(137, interval);
            // Reuse the same cursor across blocks, as the decoder will.
            let contents = block.contents.as_ref();
            cursor.reset(contents).unwrap();
            let mut count = 0;
            while cursor.advance(contents) {
                assert!(cursor.valid());
                assert_eq!(cursor.key(), &entries[count].0[..]);
                assert_eq!(cursor.value(contents), &entries[count].1[..]);
                count += 1;
            }
            assert_eq!(count, entries.len(), "interval {interval}");
            assert!(!cursor.valid());
            assert!(!cursor.corrupted());
        }
    }

    #[test]
    fn cursor_flags_truncated_entry() {
        let (block, _) = sample_block(10, 4);
        let contents = block.contents.as_ref();
        // Rebuild a block whose entry area promises more bytes than exist:
        // keep the first entry header but chop the restart trailer in so
        // the value range runs past the data.
        let mut bad = contents[..6].to_vec();
        bad.extend_from_slice(&[0, 0, 0, 0, 0, 0, 0, 0]); // restart 0, count 1
        let mut cursor = BlockCursor::new();
        cursor.reset(&bad).unwrap();
        while cursor.advance(&bad) {}
        assert!(cursor.corrupted());
    }

    #[test]
    fn forward_scan_covers_all() {
        for interval in [1usize, 2, 7, 16, 64] {
            let (block, entries) = sample_block(137, interval);
            let mut it = block.iter(Arc::new(BytewiseComparator));
            it.seek_to_first();
            let mut count = 0;
            while it.valid() {
                assert_eq!(it.key(), &entries[count].0[..]);
                count += 1;
                it.next();
            }
            assert_eq!(count, entries.len(), "interval {interval}");
        }
    }

    #[test]
    fn backward_scan_covers_all() {
        let (block, entries) = sample_block(60, 8);
        let mut it = block.iter(Arc::new(BytewiseComparator));
        it.seek_to_last();
        let mut idx = entries.len();
        while it.valid() {
            idx -= 1;
            assert_eq!(it.key(), &entries[idx].0[..]);
            it.prev();
        }
        assert_eq!(idx, 0);
    }

    #[test]
    fn corrupt_restart_count_rejected() {
        // Claims more restarts than the block can hold.
        let mut contents = vec![0u8; 8];
        contents.extend_from_slice(&100u32.to_le_bytes());
        assert!(Block::new(contents.into()).is_err());
        assert!(Block::new(vec![1, 2].into()).is_err());
    }

    #[test]
    fn corrupt_entry_sets_flag_not_panic() {
        // restart array says entry at 0, but entry bytes are garbage
        // varints pointing past the end.
        let mut contents = vec![0x05, 0xff, 0xff];
        contents.extend_from_slice(&0u32.to_le_bytes()); // restart[0] = 0
        contents.extend_from_slice(&1u32.to_le_bytes()); // num_restarts = 1
        let block = Block::new(contents.into()).unwrap();
        let mut it = block.iter(Arc::new(BytewiseComparator));
        it.seek_to_first();
        assert!(!it.valid());
        assert!(it.corrupted());
    }

    #[test]
    fn seek_on_single_entry_block() {
        let (block, _) = sample_block(1, 16);
        let mut it = block.iter(Arc::new(BytewiseComparator));
        it.seek(b"key00000");
        assert!(it.valid());
        it.seek(b"key00001");
        assert!(!it.valid());
        it.seek_to_last();
        assert!(it.valid());
        assert_eq!(it.key(), b"key00000");
    }
}
