//! SSTable reader: footer/index parsing, filtered point lookups, and the
//! two-level iterator (index block → data block), i.e. exactly the
//! "stop scanning, fetch meta data of the next data block from the index
//! block, then come back" walk the paper describes in §II-B.

use std::sync::Arc;

use parking_lot::Mutex;

use crate::block::{Block, BlockIter};
use crate::bloom::BloomFilterPolicy;
use crate::comparator::Comparator;
use crate::env::RandomAccessFile;
use crate::filter_block::FilterBlockReader;
use crate::format::{read_block, BlockHandle, Footer, FOOTER_ENCODED_LENGTH};
use crate::iterator::InternalIterator;
use crate::{corruption, Error, Result};

/// Options controlling how a table is read.
#[derive(Clone)]
pub struct TableReadOptions {
    /// Verify block CRCs on every read.
    pub verify_checksums: bool,
    /// Shared block cache; `None` keeps only the per-table one-block
    /// cache.
    pub block_cache: Option<std::sync::Arc<crate::cache::BlockCache>>,
    /// Comparator; must match the one the table was built with.
    pub comparator: Arc<dyn Comparator>,
    /// Filter policy for the filter metablock, if one was written.
    pub filter_policy: Option<BloomFilterPolicy>,
    /// Must match `TableBuilderOptions::internal_key_filter`: filter probes
    /// strip the 8-byte internal-key trailer before the bloom check.
    pub internal_key_filter: bool,
}

impl Default for TableReadOptions {
    fn default() -> Self {
        TableReadOptions {
            verify_checksums: true,
            block_cache: None,
            comparator: Arc::new(crate::comparator::BytewiseComparator),
            filter_policy: Some(BloomFilterPolicy::new(10)),
            internal_key_filter: false,
        }
    }
}

/// An open, immutable SSTable.
pub struct Table {
    file: Box<dyn RandomAccessFile>,
    options: TableReadOptions,
    index_block: Block,
    filter: Option<FilterBlockReader>,
    /// Tiny per-table cache of the most recently loaded data block; avoids
    /// re-reading during point-lookup bursts without a full block cache.
    last_block: Mutex<Option<(u64, Block)>>,
    /// Key prefix in the shared block cache.
    cache_id: u64,
    file_size: u64,
}

impl Table {
    /// Opens a table from `file` of `file_size` bytes.
    pub fn open(
        file: Box<dyn RandomAccessFile>,
        file_size: u64,
        options: TableReadOptions,
    ) -> Result<Arc<Table>> {
        if (file_size as usize) < FOOTER_ENCODED_LENGTH {
            return Err(corruption("file too short to be an sstable"));
        }
        let mut footer_buf = vec![0u8; FOOTER_ENCODED_LENGTH];
        let read = file.read_at(file_size - FOOTER_ENCODED_LENGTH as u64, &mut footer_buf)?;
        if read != FOOTER_ENCODED_LENGTH {
            return Err(corruption("truncated footer"));
        }
        let footer = Footer::decode(&footer_buf)?;

        let index_contents = read_block(
            file.as_ref(),
            &footer.index_handle,
            options.verify_checksums,
        )?;
        let index_block = Block::new(index_contents)?;

        // Filter metablock, if present and a policy is configured.
        let mut filter = None;
        if let Some(policy) = options.filter_policy {
            if footer.metaindex_handle.size > 0 {
                let meta_contents = read_block(
                    file.as_ref(),
                    &footer.metaindex_handle,
                    options.verify_checksums,
                )?;
                let meta_block = Block::new(meta_contents)?;
                let mut it = meta_block.iter(Arc::new(crate::comparator::BytewiseComparator));
                let key = format!("filter.{}", policy.name());
                it.seek(key.as_bytes());
                if it.valid() && it.key() == key.as_bytes() {
                    let (handle, _) = BlockHandle::decode_from(it.value())?;
                    let filter_contents =
                        read_block(file.as_ref(), &handle, options.verify_checksums)?;
                    filter = FilterBlockReader::new(policy, filter_contents.to_vec());
                }
            }
        }

        Ok(Arc::new(Table {
            file,
            options,
            index_block,
            filter,
            last_block: Mutex::new(None),
            cache_id: crate::cache::new_cache_id(),
            file_size,
        }))
    }

    /// Total file size in bytes.
    pub fn file_size(&self) -> u64 {
        self.file_size
    }

    /// The (decoded) index block. The FPGA host interface copies this into
    /// the device's Index Block Memory (Fig. 7 of the paper).
    pub fn index_block(&self) -> &Block {
        &self.index_block
    }

    /// All data block handles in key order, as recorded in the index block.
    pub fn data_block_handles(&self) -> Result<Vec<BlockHandle>> {
        let mut out = Vec::new();
        let mut it = self.index_block.iter(Arc::clone(&self.options.comparator));
        it.seek_to_first();
        while it.valid() {
            let (handle, _) = BlockHandle::decode_from(it.value())?;
            out.push(handle);
            it.next();
        }
        if it.corrupted() {
            return Err(corruption("corrupt index block"));
        }
        Ok(out)
    }

    /// Reads one data block exactly as stored on disk: contents (possibly
    /// compressed) plus the 5-byte trailer. This is what the host DMA
    /// ships to the device's Data Block Memory.
    pub fn read_raw_framed_block(&self, handle: &BlockHandle) -> Result<Vec<u8>> {
        let n = handle.size as usize + crate::format::BLOCK_TRAILER_SIZE;
        let mut buf = vec![0u8; n];
        let read = self.file.read_at(handle.offset, &mut buf)?;
        if read != n {
            return Err(corruption("truncated raw block read"));
        }
        Ok(buf)
    }

    /// Loads the data block at `handle`, consulting the shared block
    /// cache (if configured) and the per-table one-block cache.
    fn load_block(&self, handle: &BlockHandle) -> Result<Block> {
        if let Some((off, block)) = &*self.last_block.lock() {
            if *off == handle.offset {
                return Ok(block.clone());
            }
        }
        if let Some(cache) = &self.options.block_cache {
            if let Some(block) = cache.get(self.cache_id, handle.offset) {
                *self.last_block.lock() = Some((handle.offset, block.clone()));
                return Ok(block);
            }
        }
        let contents = read_block(self.file.as_ref(), handle, self.options.verify_checksums)?;
        let block = Block::new(contents)?;
        if let Some(cache) = &self.options.block_cache {
            cache.insert(self.cache_id, handle.offset, block.clone());
        }
        *self.last_block.lock() = Some((handle.offset, block.clone()));
        Ok(block)
    }

    /// This table's id in the shared block cache (for eviction on delete).
    pub fn cache_id(&self) -> u64 {
        self.cache_id
    }

    /// Point lookup: returns the value for the first entry with key >=
    /// `target` whose block may contain it, or `None` if the table cannot
    /// contain `target` (also consulting the bloom filter).
    ///
    /// The caller (the LSM layer) interprets the returned entry's internal
    /// key — this method does not require an exact match.
    pub fn get(&self, target: &[u8]) -> Result<Option<(Vec<u8>, Vec<u8>)>> {
        let mut index_iter = self.index_block.iter(Arc::clone(&self.options.comparator));
        index_iter.seek(target);
        if !index_iter.valid() {
            return Ok(None);
        }
        let (handle, _) = BlockHandle::decode_from(index_iter.value())?;
        if let Some(filter) = &self.filter {
            let probe = crate::table_builder::filter_key(target, self.options.internal_key_filter);
            if !filter.key_may_match(handle.offset, probe) {
                return Ok(None);
            }
        }
        let block = self.load_block(&handle)?;
        let mut it = block.iter(Arc::clone(&self.options.comparator));
        it.seek(target);
        if it.corrupted() {
            return Err(corruption("corrupt data block entry"));
        }
        if !it.valid() {
            return Ok(None);
        }
        Ok(Some((it.key().to_vec(), it.value().to_vec())))
    }

    /// Creates a full-table iterator.
    pub fn iter(self: &Arc<Self>) -> TableIterator {
        TableIterator {
            table: Arc::clone(self),
            index_iter: self.index_block.iter(Arc::clone(&self.options.comparator)),
            data_iter: None,
            error: None,
        }
    }

    /// Approximate file offset of `key` within the table (used for
    /// `ApproximateSizes`-style queries and compaction splitting).
    pub fn approximate_offset_of(&self, key: &[u8]) -> u64 {
        let mut it = self.index_block.iter(Arc::clone(&self.options.comparator));
        it.seek(key);
        if it.valid() {
            if let Ok((handle, _)) = BlockHandle::decode_from(it.value()) {
                return handle.offset;
            }
        }
        self.file_size
    }
}

/// Two-level iterator: walks the index block, loading data blocks lazily.
pub struct TableIterator {
    table: Arc<Table>,
    index_iter: BlockIter,
    data_iter: Option<BlockIter>,
    error: Option<String>,
}

impl TableIterator {
    /// Loads the data block for the current index position.
    fn init_data_block(&mut self) {
        self.data_iter = None;
        if !self.index_iter.valid() {
            return;
        }
        match BlockHandle::decode_from(self.index_iter.value()) {
            Ok((handle, _)) => match self.table.load_block(&handle) {
                Ok(block) => {
                    self.data_iter = Some(block.iter(Arc::clone(&self.table.options.comparator)));
                }
                Err(e) => self.error = Some(e.to_string()),
            },
            Err(e) => self.error = Some(e.to_string()),
        }
    }

    /// Advances past empty data blocks in the forward direction.
    fn skip_empty_data_blocks_forward(&mut self) {
        while self.data_iter.as_ref().is_some_and(|d| !d.valid()) {
            if !self.index_iter.valid() {
                self.data_iter = None;
                return;
            }
            self.index_iter.next();
            self.init_data_block();
            if let Some(d) = &mut self.data_iter {
                d.seek_to_first();
            }
        }
    }

    fn skip_empty_data_blocks_backward(&mut self) {
        while self.data_iter.as_ref().is_some_and(|d| !d.valid()) {
            if !self.index_iter.valid() {
                self.data_iter = None;
                return;
            }
            self.index_iter.prev();
            self.init_data_block();
            if let Some(d) = &mut self.data_iter {
                d.seek_to_last();
            }
        }
    }
}

impl InternalIterator for TableIterator {
    fn valid(&self) -> bool {
        self.error.is_none() && self.data_iter.as_ref().is_some_and(|d| d.valid())
    }

    fn seek_to_first(&mut self) {
        self.index_iter.seek_to_first();
        self.init_data_block();
        if let Some(d) = &mut self.data_iter {
            d.seek_to_first();
        }
        self.skip_empty_data_blocks_forward();
    }

    fn seek_to_last(&mut self) {
        self.index_iter.seek_to_last();
        self.init_data_block();
        if let Some(d) = &mut self.data_iter {
            d.seek_to_last();
        }
        self.skip_empty_data_blocks_backward();
    }

    fn seek(&mut self, target: &[u8]) {
        self.index_iter.seek(target);
        self.init_data_block();
        if let Some(d) = &mut self.data_iter {
            d.seek(target);
        }
        self.skip_empty_data_blocks_forward();
    }

    fn next(&mut self) {
        debug_assert!(self.valid());
        if let Some(d) = &mut self.data_iter {
            d.next();
        }
        self.skip_empty_data_blocks_forward();
    }

    fn prev(&mut self) {
        debug_assert!(self.valid());
        if let Some(d) = &mut self.data_iter {
            d.prev();
        }
        self.skip_empty_data_blocks_backward();
    }

    fn key(&self) -> &[u8] {
        self.data_iter
            .as_ref()
            // PANIC-OK: InternalIterator contract — key() only when valid().
            .expect("key on invalid iterator")
            .key()
    }

    fn value(&self) -> &[u8] {
        self.data_iter
            .as_ref()
            // PANIC-OK: InternalIterator contract — value() only when valid().
            .expect("value on invalid iterator")
            .value()
    }

    fn status(&self) -> Result<()> {
        match &self.error {
            Some(e) => Err(Error::Corruption(e.clone())),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{MemEnv, StorageEnv};
    use crate::format::CompressionType;
    use crate::table_builder::{TableBuilder, TableBuilderOptions};
    use std::path::Path;

    fn build_table(
        env: &MemEnv,
        path: &str,
        n: usize,
        block_size: usize,
        compression: CompressionType,
    ) -> Arc<Table> {
        let f = env.create_writable(Path::new(path)).unwrap();
        let opts = TableBuilderOptions {
            block_size,
            compression,
            ..Default::default()
        };
        let mut b = TableBuilder::new(opts, f);
        for i in 0..n {
            let k = format!("key{i:06}");
            let v = format!("value-{i}-{}", "x".repeat(i % 40));
            b.add(k.as_bytes(), v.as_bytes()).unwrap();
        }
        let size = b.finish().unwrap();
        let file = env.open_random_access(Path::new(path)).unwrap();
        Table::open(file, size, TableReadOptions::default()).unwrap()
    }

    #[test]
    fn full_scan_returns_everything_in_order() {
        for compression in [CompressionType::None, CompressionType::Snappy] {
            let env = MemEnv::new();
            let table = build_table(&env, "/t", 2000, 1024, compression);
            let mut it = table.iter();
            it.seek_to_first();
            let mut count = 0;
            let mut last: Option<Vec<u8>> = None;
            while it.valid() {
                let k = it.key().to_vec();
                if let Some(prev) = &last {
                    assert!(prev < &k, "keys out of order");
                }
                assert_eq!(k, format!("key{count:06}").as_bytes());
                last = Some(k);
                count += 1;
                it.next();
            }
            assert_eq!(count, 2000);
            it.status().unwrap();
        }
    }

    #[test]
    fn point_lookups_hit_and_miss() {
        let env = MemEnv::new();
        let table = build_table(&env, "/t", 500, 512, CompressionType::Snappy);
        // Hits.
        for i in [0usize, 1, 77, 250, 499] {
            let k = format!("key{i:06}");
            let got = table.get(k.as_bytes()).unwrap();
            let (fk, _) = got.expect("should find key");
            assert_eq!(fk, k.as_bytes());
        }
        // Miss past the end.
        assert!(table.get(b"zzzzzz").unwrap().is_none());
        // Between-keys probe: the bloom filter excludes it outright.
        assert!(table.get(b"key000250a").unwrap().is_none());

        // Without a filter, between-keys probes return the successor and
        // callers check exactness (the LSM layer relies on this).
        let f = env.create_writable(Path::new("/nofilter")).unwrap();
        let bopts = TableBuilderOptions {
            filter_policy: None,
            ..Default::default()
        };
        let mut b = TableBuilder::new(bopts, f);
        for i in 0..100 {
            b.add(format!("key{i:06}").as_bytes(), b"v").unwrap();
        }
        let size = b.finish().unwrap();
        let file = env.open_random_access(Path::new("/nofilter")).unwrap();
        let ropts = TableReadOptions {
            filter_policy: None,
            ..Default::default()
        };
        let table = Table::open(file, size, ropts).unwrap();
        let got = table.get(b"key000050a").unwrap().unwrap();
        assert_eq!(got.0, b"key000051");
    }

    #[test]
    fn seek_positions_are_exact() {
        let env = MemEnv::new();
        let table = build_table(&env, "/t", 300, 256, CompressionType::None);
        let mut it = table.iter();
        it.seek(b"key000123");
        assert!(it.valid());
        assert_eq!(it.key(), b"key000123");
        it.seek(b"key000123a");
        assert_eq!(it.key(), b"key000124");
        it.seek(b"zzz");
        assert!(!it.valid());
        it.seek(b"");
        assert_eq!(it.key(), b"key000000");
    }

    #[test]
    fn backward_iteration() {
        let env = MemEnv::new();
        let table = build_table(&env, "/t", 100, 256, CompressionType::None);
        let mut it = table.iter();
        it.seek_to_last();
        let mut idx = 100;
        while it.valid() {
            idx -= 1;
            assert_eq!(it.key(), format!("key{idx:06}").as_bytes());
            it.prev();
        }
        assert_eq!(idx, 0);
    }

    #[test]
    fn empty_table_iterates_nothing() {
        let env = MemEnv::new();
        let f = env.create_writable(Path::new("/t")).unwrap();
        let mut b = TableBuilder::new(TableBuilderOptions::default(), f);
        let size = b.finish().unwrap();
        let file = env.open_random_access(Path::new("/t")).unwrap();
        let table = Table::open(file, size, TableReadOptions::default()).unwrap();
        let mut it = table.iter();
        it.seek_to_first();
        assert!(!it.valid());
        assert!(table.get(b"anything").unwrap().is_none());
    }

    #[test]
    fn open_rejects_garbage() {
        let env = MemEnv::new();
        let mut w = env.create_writable(Path::new("/bad")).unwrap();
        w.append(&[0u8; 100]).unwrap();
        drop(w);
        let f = env.open_random_access(Path::new("/bad")).unwrap();
        assert!(Table::open(f, 100, TableReadOptions::default()).is_err());
        let f = env.open_random_access(Path::new("/bad")).unwrap();
        assert!(Table::open(f, 10, TableReadOptions::default()).is_err());
    }

    #[test]
    fn approximate_offsets_monotonic() {
        let env = MemEnv::new();
        let table = build_table(&env, "/t", 1000, 512, CompressionType::None);
        let o1 = table.approximate_offset_of(b"key000100");
        let o2 = table.approximate_offset_of(b"key000500");
        let o3 = table.approximate_offset_of(b"key000900");
        assert!(o1 <= o2 && o2 <= o3);
        assert!(table.approximate_offset_of(b"zzzz") <= table.file_size());
    }
}
