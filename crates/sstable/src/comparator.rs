//! Key ordering, including LevelDB's internal-key ordering (user key
//! ascending, then sequence number *descending* so newer entries sort
//! first).

use std::cmp::Ordering;
use std::sync::Arc;

use crate::coding::decode_fixed64;

/// A total order over keys, plus the two key-shortening hooks the table
/// format uses to keep index blocks small.
pub trait Comparator: Send + Sync {
    /// Name persisted in table metadata; mismatched comparators must not
    /// silently read each other's tables.
    fn name(&self) -> &'static str;

    /// Three-way comparison.
    fn compare(&self, a: &[u8], b: &[u8]) -> Ordering;

    /// Returns a key `k` with `start <= k < limit` that is as short as
    /// possible; used for index-block separator keys.
    fn find_shortest_separator(&self, start: &[u8], limit: &[u8]) -> Vec<u8>;

    /// Returns a short key `k >= key`; used for the final index entry.
    fn find_short_successor(&self, key: &[u8]) -> Vec<u8>;
}

/// Plain lexicographic byte ordering (LevelDB's default user comparator).
#[derive(Debug, Clone, Copy, Default)]
pub struct BytewiseComparator;

impl Comparator for BytewiseComparator {
    fn name(&self) -> &'static str {
        "leveldb.BytewiseComparator"
    }

    fn compare(&self, a: &[u8], b: &[u8]) -> Ordering {
        a.cmp(b)
    }

    fn find_shortest_separator(&self, start: &[u8], limit: &[u8]) -> Vec<u8> {
        let min_len = start.len().min(limit.len());
        let mut diff = 0;
        while diff < min_len && start[diff] == limit[diff] {
            diff += 1;
        }
        if diff >= min_len {
            // One is a prefix of the other; no shortening possible.
            return start.to_vec();
        }
        let byte = start[diff];
        if byte < 0xff && byte + 1 < limit[diff] {
            let mut sep = start[..=diff].to_vec();
            sep[diff] += 1;
            debug_assert!(self.compare(&sep, limit) == Ordering::Less);
            return sep;
        }
        start.to_vec()
    }

    fn find_short_successor(&self, key: &[u8]) -> Vec<u8> {
        for (i, &b) in key.iter().enumerate() {
            if b != 0xff {
                let mut succ = key[..=i].to_vec();
                succ[i] += 1;
                return succ;
            }
        }
        // All 0xff: key is its own successor-bound.
        key.to_vec()
    }
}

/// Orders internal keys: user key ascending (by the wrapped user
/// comparator), then the 8-byte trailer descending, so that for one user
/// key the freshest sequence number is encountered first.
#[derive(Clone)]
pub struct InternalKeyComparator {
    user: Arc<dyn Comparator>,
}

impl InternalKeyComparator {
    /// Wraps a user comparator.
    pub fn new(user: Arc<dyn Comparator>) -> Self {
        InternalKeyComparator { user }
    }

    /// The wrapped user-key comparator.
    pub fn user_comparator(&self) -> &Arc<dyn Comparator> {
        &self.user
    }

    /// Compares only the user-key portions of two internal keys.
    pub fn compare_user_keys(&self, a: &[u8], b: &[u8]) -> Ordering {
        debug_assert!(a.len() >= 8 && b.len() >= 8);
        self.user.compare(&a[..a.len() - 8], &b[..b.len() - 8])
    }
}

impl Default for InternalKeyComparator {
    fn default() -> Self {
        InternalKeyComparator::new(Arc::new(BytewiseComparator))
    }
}

impl Comparator for InternalKeyComparator {
    fn name(&self) -> &'static str {
        "leveldb.InternalKeyComparator"
    }

    fn compare(&self, a: &[u8], b: &[u8]) -> Ordering {
        debug_assert!(a.len() >= 8, "internal key too short: {a:?}");
        debug_assert!(b.len() >= 8, "internal key too short: {b:?}");
        let ord = self.user.compare(&a[..a.len() - 8], &b[..b.len() - 8]);
        if ord != Ordering::Equal {
            return ord;
        }
        let atag = decode_fixed64(&a[a.len() - 8..]);
        let btag = decode_fixed64(&b[b.len() - 8..]);
        // Higher sequence number sorts first.
        btag.cmp(&atag)
    }

    fn find_shortest_separator(&self, start: &[u8], limit: &[u8]) -> Vec<u8> {
        let user_start = &start[..start.len() - 8];
        let user_limit = &limit[..limit.len() - 8];
        let tmp = self.user.find_shortest_separator(user_start, user_limit);
        if tmp.len() < user_start.len() && self.user.compare(user_start, &tmp) == Ordering::Less {
            // Shortened physically; tag it with the maximal trailer so it
            // still sorts before all real entries for that user key.
            let mut out = tmp;
            out.extend_from_slice(&crate::ikey::pack_tag_max().to_le_bytes());
            debug_assert!(self.compare(start, &out) == Ordering::Less);
            debug_assert!(self.compare(&out, limit) == Ordering::Less);
            return out;
        }
        start.to_vec()
    }

    fn find_short_successor(&self, key: &[u8]) -> Vec<u8> {
        let user_key = &key[..key.len() - 8];
        let tmp = self.user.find_short_successor(user_key);
        if tmp.len() < user_key.len() && self.user.compare(user_key, &tmp) == Ordering::Less {
            let mut out = tmp;
            out.extend_from_slice(&crate::ikey::pack_tag_max().to_le_bytes());
            debug_assert!(self.compare(key, &out) == Ordering::Less);
            return out;
        }
        key.to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ikey::{append_internal_key, ValueType};

    fn ikey(user: &[u8], seq: u64, t: ValueType) -> Vec<u8> {
        let mut k = Vec::new();
        append_internal_key(&mut k, user, seq, t);
        k
    }

    #[test]
    fn bytewise_orders_lexicographically() {
        let c = BytewiseComparator;
        assert_eq!(c.compare(b"a", b"b"), Ordering::Less);
        assert_eq!(c.compare(b"abc", b"ab"), Ordering::Greater);
        assert_eq!(c.compare(b"", b""), Ordering::Equal);
    }

    #[test]
    fn shortest_separator_shrinks() {
        let c = BytewiseComparator;
        let sep = c.find_shortest_separator(b"abcdefghij", b"abzzzz");
        assert_eq!(sep, b"abd");
        assert!(c.compare(b"abcdefghij", &sep) != Ordering::Greater);
        assert_eq!(c.compare(&sep, b"abzzzz"), Ordering::Less);
    }

    #[test]
    fn shortest_separator_prefix_case() {
        let c = BytewiseComparator;
        // start is a prefix of limit: unchanged.
        assert_eq!(c.find_shortest_separator(b"ab", b"abc"), b"ab");
        // adjacent bytes: cannot bump.
        assert_eq!(c.find_shortest_separator(b"abc", b"abd"), b"abc");
    }

    #[test]
    fn short_successor() {
        let c = BytewiseComparator;
        assert_eq!(c.find_short_successor(b"abc"), b"b");
        assert_eq!(
            c.find_short_successor(&[0xff, 0xff, 0x01]),
            &[0xff, 0xff, 0x02]
        );
        assert_eq!(c.find_short_successor(&[0xff, 0xff]), &[0xff, 0xff]);
    }

    #[test]
    fn internal_key_ordering() {
        let c = InternalKeyComparator::default();
        let a100 = ikey(b"apple", 100, ValueType::Value);
        let a50 = ikey(b"apple", 50, ValueType::Value);
        let b10 = ikey(b"banana", 10, ValueType::Value);
        // Same user key: higher seq first.
        assert_eq!(c.compare(&a100, &a50), Ordering::Less);
        // User key dominates sequence.
        assert_eq!(c.compare(&a50, &b10), Ordering::Less);
        assert_eq!(c.compare(&a100, &a100), Ordering::Equal);
    }

    #[test]
    fn internal_separator_stays_in_range() {
        let c = InternalKeyComparator::default();
        let start = ikey(b"abcdefghij", 5, ValueType::Value);
        let limit = ikey(b"abzz", 9, ValueType::Value);
        let sep = c.find_shortest_separator(&start, &limit);
        assert!(c.compare(&start, &sep) != Ordering::Greater);
        assert_eq!(c.compare(&sep, &limit), Ordering::Less);
        assert!(sep.len() < start.len());
    }
}
