//! Integer encodings used throughout the LevelDB format: little-endian
//! fixed-width and base-128 varints.

/// Appends a little-endian `u32`.
#[inline]
pub fn put_fixed32(dst: &mut Vec<u8>, v: u32) {
    dst.extend_from_slice(&v.to_le_bytes());
}

/// Appends a little-endian `u64`.
#[inline]
pub fn put_fixed64(dst: &mut Vec<u8>, v: u64) {
    dst.extend_from_slice(&v.to_le_bytes());
}

/// Reads a little-endian `u32` from the start of `src`.
///
/// # Panics
/// Panics if `src` is shorter than 4 bytes.
#[inline]
pub fn decode_fixed32(src: &[u8]) -> u32 {
    // PANIC-OK: documented in the `# Panics` section above.
    u32::from_le_bytes(src[..4].try_into().unwrap())
}

/// Reads a little-endian `u64` from the start of `src`.
///
/// # Panics
/// Panics if `src` is shorter than 8 bytes.
#[inline]
pub fn decode_fixed64(src: &[u8]) -> u64 {
    // PANIC-OK: documented in the `# Panics` section above.
    u64::from_le_bytes(src[..8].try_into().unwrap())
}

/// Appends `v` as a varint32 (at most 5 bytes).
pub fn put_varint32(dst: &mut Vec<u8>, mut v: u32) {
    while v >= 0x80 {
        dst.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    dst.push(v as u8);
}

/// Appends `v` as a varint64 (at most 10 bytes).
pub fn put_varint64(dst: &mut Vec<u8>, mut v: u64) {
    while v >= 0x80 {
        dst.push((v as u8 & 0x7f) | 0x80);
        v >>= 7;
    }
    dst.push(v as u8);
}

/// Decodes a varint32, returning `(value, bytes_consumed)`.
pub fn get_varint32(src: &[u8]) -> Option<(u32, usize)> {
    let mut v = 0u32;
    let mut shift = 0u32;
    for (i, &b) in src.iter().enumerate().take(5) {
        v |= u32::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some((v, i + 1));
        }
        shift += 7;
    }
    None
}

/// Decodes a varint64, returning `(value, bytes_consumed)`.
pub fn get_varint64(src: &[u8]) -> Option<(u64, usize)> {
    let mut v = 0u64;
    let mut shift = 0u32;
    for (i, &b) in src.iter().enumerate().take(10) {
        v |= u64::from(b & 0x7f) << shift;
        if b & 0x80 == 0 {
            return Some((v, i + 1));
        }
        shift += 7;
    }
    None
}

/// Number of bytes `put_varint32` will emit for `v`.
pub fn varint32_len(v: u32) -> usize {
    match v {
        0..=0x7f => 1,
        0x80..=0x3fff => 2,
        0x4000..=0x1f_ffff => 3,
        0x20_0000..=0xfff_ffff => 4,
        _ => 5,
    }
}

/// Appends a length-prefixed byte slice (varint32 length, then bytes).
pub fn put_length_prefixed_slice(dst: &mut Vec<u8>, s: &[u8]) {
    put_varint32(dst, s.len() as u32);
    dst.extend_from_slice(s);
}

/// Reads a length-prefixed slice, returning `(slice, bytes_consumed)`.
pub fn get_length_prefixed_slice(src: &[u8]) -> Option<(&[u8], usize)> {
    let (len, n) = get_varint32(src)?;
    let len = len as usize;
    if src.len() < n + len {
        return None;
    }
    Some((&src[n..n + len], n + len))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_roundtrip() {
        let mut buf = Vec::new();
        put_fixed32(&mut buf, 0xdead_beef);
        put_fixed64(&mut buf, 0x0123_4567_89ab_cdef);
        assert_eq!(decode_fixed32(&buf), 0xdead_beef);
        assert_eq!(decode_fixed64(&buf[4..]), 0x0123_4567_89ab_cdef);
    }

    #[test]
    fn varint32_roundtrip_boundaries() {
        for v in [
            0u32,
            1,
            0x7f,
            0x80,
            0x3fff,
            0x4000,
            0x1f_ffff,
            0x20_0000,
            u32::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint32(&mut buf, v);
            assert_eq!(buf.len(), varint32_len(v), "len for {v:#x}");
            let (got, used) = get_varint32(&buf).unwrap();
            assert_eq!(got, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn varint64_roundtrip_boundaries() {
        for shift in 0..64 {
            let v = 1u64 << shift;
            let mut buf = Vec::new();
            put_varint64(&mut buf, v);
            let (got, used) = get_varint64(&buf).unwrap();
            assert_eq!(got, v);
            assert_eq!(used, buf.len());
        }
    }

    #[test]
    fn varint_truncation_detected() {
        let mut buf = Vec::new();
        put_varint64(&mut buf, u64::MAX);
        for cut in 0..buf.len() {
            assert!(get_varint64(&buf[..cut]).is_none());
        }
    }

    #[test]
    fn length_prefixed_roundtrip() {
        let mut buf = Vec::new();
        put_length_prefixed_slice(&mut buf, b"alpha");
        put_length_prefixed_slice(&mut buf, b"");
        put_length_prefixed_slice(&mut buf, &[9u8; 300]);
        let (a, n1) = get_length_prefixed_slice(&buf).unwrap();
        assert_eq!(a, b"alpha");
        let (b, n2) = get_length_prefixed_slice(&buf[n1..]).unwrap();
        assert_eq!(b, b"");
        let (c, n3) = get_length_prefixed_slice(&buf[n1 + n2..]).unwrap();
        assert_eq!(c, &[9u8; 300][..]);
        assert_eq!(n1 + n2 + n3, buf.len());
    }

    #[test]
    fn length_prefixed_truncated_is_none() {
        let mut buf = Vec::new();
        put_length_prefixed_slice(&mut buf, b"hello");
        assert!(get_length_prefixed_slice(&buf[..3]).is_none());
    }
}
