//! SSTable writer (LevelDB `TableBuilder`).
//!
//! Emits data blocks of ~`block_size` bytes, the optional filter
//! metablock, the metaindex block, the index block whose entries the
//! paper's Index Block Decoder consumes, and the footer.

use std::sync::Arc;

use crate::block_builder::BlockBuilder;
use crate::bloom::BloomFilterPolicy;
use crate::comparator::Comparator;
use crate::env::WritableFile;
use crate::filter_block::FilterBlockBuilder;
use crate::format::{frame_block, BlockHandle, CompressionType, Footer};
use crate::{Error, Result};

/// Table construction options.
#[derive(Clone)]
pub struct TableBuilderOptions {
    /// Target uncompressed data block size (paper default: 4 KiB).
    pub block_size: usize,
    /// Restart interval within blocks.
    pub block_restart_interval: usize,
    /// Compression applied to blocks.
    pub compression: CompressionType,
    /// Bloom filter policy; `None` disables the filter metablock.
    pub filter_policy: Option<BloomFilterPolicy>,
    /// When true, the keys being added are internal keys and the filter is
    /// built over their user-key prefix (LevelDB's `InternalFilterPolicy`),
    /// so point lookups with any sequence number can use the filter.
    pub internal_key_filter: bool,
    /// Key ordering.
    pub comparator: Arc<dyn Comparator>,
}

impl Default for TableBuilderOptions {
    fn default() -> Self {
        TableBuilderOptions {
            block_size: 4096,
            block_restart_interval: 16,
            compression: CompressionType::Snappy,
            filter_policy: Some(BloomFilterPolicy::new(10)),
            internal_key_filter: false,
            comparator: Arc::new(crate::comparator::BytewiseComparator),
        }
    }
}

/// Key as seen by the filter: the user-key prefix when the table stores
/// internal keys, the raw key otherwise.
pub(crate) fn filter_key(key: &[u8], internal: bool) -> &[u8] {
    if internal && key.len() >= 8 {
        &key[..key.len() - 8]
    } else {
        key
    }
}

/// Incrementally builds one SSTable into a writable file.
pub struct TableBuilder {
    options: TableBuilderOptions,
    file: Box<dyn WritableFile>,
    offset: u64,
    num_entries: u64,
    data_block: BlockBuilder,
    index_block: BlockBuilder,
    filter_builder: Option<FilterBlockBuilder>,
    /// Set after a data block is cut; the index entry is deferred until the
    /// next key arrives so the separator can be shortened.
    pending_index_entry: Option<BlockHandle>,
    last_key: Vec<u8>,
    compressed_scratch: Vec<u8>,
    finished: bool,
    /// Raw (uncompressed) data bytes added, for size stats.
    raw_data_bytes: u64,
}

impl TableBuilder {
    /// Starts building a table into `file`.
    pub fn new(options: TableBuilderOptions, file: Box<dyn WritableFile>) -> Self {
        let filter_builder = options.filter_policy.map(FilterBlockBuilder::new);
        TableBuilder {
            data_block: BlockBuilder::new(options.block_restart_interval),
            // LevelDB uses restart interval 1 for index blocks.
            index_block: BlockBuilder::new(1),
            options,
            file,
            offset: 0,
            num_entries: 0,
            filter_builder,
            pending_index_entry: None,
            last_key: Vec::new(),
            compressed_scratch: Vec::new(),
            finished: false,
            raw_data_bytes: 0,
        }
    }

    /// Adds a key/value pair; keys must arrive in strictly increasing
    /// comparator order.
    pub fn add(&mut self, key: &[u8], value: &[u8]) -> Result<()> {
        if self.finished {
            return Err(Error::InvalidArgument("add after finish".into()));
        }
        if self.num_entries > 0
            && self.options.comparator.compare(key, &self.last_key) != std::cmp::Ordering::Greater
        {
            return Err(Error::InvalidArgument(format!(
                "keys out of order: {:?} after {:?}",
                key, self.last_key
            )));
        }

        if let Some(handle) = self.pending_index_entry.take() {
            // First key of a new block: index separator between blocks.
            let sep = self
                .options
                .comparator
                .find_shortest_separator(&self.last_key, key);
            self.index_block.add(&sep, &handle.encode());
        }

        if let Some(fb) = &mut self.filter_builder {
            fb.add_key(filter_key(key, self.options.internal_key_filter));
        }

        self.last_key.clear();
        self.last_key.extend_from_slice(key);
        self.num_entries += 1;
        self.raw_data_bytes += (key.len() + value.len()) as u64;
        self.data_block.add(key, value);

        if self.data_block.current_size_estimate() >= self.options.block_size {
            self.flush_data_block()?;
        }
        Ok(())
    }

    /// Cuts the current data block and writes it out.
    fn flush_data_block(&mut self) -> Result<()> {
        if self.data_block.is_empty() {
            return Ok(());
        }
        let contents = self.data_block.finish().to_vec();
        let handle = self.write_framed_block(&contents, self.options.compression)?;
        self.data_block.reset();
        self.pending_index_entry = Some(handle);
        if let Some(fb) = &mut self.filter_builder {
            fb.start_block(self.offset);
        }
        Ok(())
    }

    /// Writes block contents + trailer, returning its handle.
    fn write_framed_block(
        &mut self,
        contents: &[u8],
        compression: CompressionType,
    ) -> Result<BlockHandle> {
        let (_, framed) = frame_block(contents, compression, &mut self.compressed_scratch);
        let handle = BlockHandle::new(
            self.offset,
            (framed.len() - crate::format::BLOCK_TRAILER_SIZE) as u64,
        );
        self.file.append(&framed)?;
        self.offset += framed.len() as u64;
        Ok(handle)
    }

    /// Finalizes the table: filter, metaindex, index blocks and footer.
    /// Returns the total file size.
    pub fn finish(&mut self) -> Result<u64> {
        if self.finished {
            return Err(Error::InvalidArgument("finish called twice".into()));
        }
        self.flush_data_block()?;
        self.finished = true;

        // Filter metablock (never compressed).
        let filter_handle = match &mut self.filter_builder {
            Some(fb) => {
                let contents = fb.finish().to_vec();
                Some(self.write_framed_block(&contents, CompressionType::None)?)
            }
            None => None,
        };

        // Metaindex block: maps "filter.<policy name>" to the handle.
        let mut metaindex = BlockBuilder::new(1);
        if let Some(handle) = filter_handle {
            let name = self
                .options
                .filter_policy
                .as_ref()
                // PANIC-OK: filter_handle is only Some when a policy was
                // configured and its block was written.
                .expect("filter handle implies policy")
                .name();
            metaindex.add(format!("filter.{name}").as_bytes(), &handle.encode());
        }
        let metaindex_contents = metaindex.finish().to_vec();
        let metaindex_handle =
            self.write_framed_block(&metaindex_contents, self.options.compression)?;

        // Index block: flush the pending entry with a short successor key.
        if let Some(handle) = self.pending_index_entry.take() {
            let succ = self.options.comparator.find_short_successor(&self.last_key);
            self.index_block.add(&succ, &handle.encode());
        }
        let index_contents = self.index_block.finish().to_vec();
        let index_handle = self.write_framed_block(&index_contents, self.options.compression)?;

        let footer = Footer {
            metaindex_handle,
            index_handle,
        };
        let footer_bytes = footer.encode();
        self.file.append(&footer_bytes)?;
        self.offset += footer_bytes.len() as u64;
        self.file.flush()?;
        Ok(self.offset)
    }

    /// Number of entries added so far.
    pub fn num_entries(&self) -> u64 {
        self.num_entries
    }

    /// Current file size (bytes written, excluding buffered block).
    pub fn file_size(&self) -> u64 {
        self.offset
    }

    /// Raw (uncompressed) key+value bytes added.
    pub fn raw_data_bytes(&self) -> u64 {
        self.raw_data_bytes
    }

    /// Syncs the underlying file.
    pub fn sync(&mut self) -> Result<()> {
        self.file.sync()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{MemEnv, StorageEnv};
    use std::path::Path;

    #[test]
    fn rejects_out_of_order_keys() {
        let env = MemEnv::new();
        let f = env.create_writable(Path::new("/t")).unwrap();
        let mut b = TableBuilder::new(TableBuilderOptions::default(), f);
        b.add(b"bbb", b"1").unwrap();
        assert!(b.add(b"aaa", b"2").is_err());
        assert!(
            b.add(b"bbb", b"2").is_err(),
            "duplicate key must be rejected"
        );
        b.add(b"ccc", b"3").unwrap();
    }

    #[test]
    fn rejects_use_after_finish() {
        let env = MemEnv::new();
        let f = env.create_writable(Path::new("/t")).unwrap();
        let mut b = TableBuilder::new(TableBuilderOptions::default(), f);
        b.add(b"a", b"1").unwrap();
        b.finish().unwrap();
        assert!(b.add(b"b", b"2").is_err());
        assert!(b.finish().is_err());
    }

    #[test]
    fn empty_table_is_valid() {
        let env = MemEnv::new();
        let f = env.create_writable(Path::new("/t")).unwrap();
        let mut b = TableBuilder::new(TableBuilderOptions::default(), f);
        let size = b.finish().unwrap();
        assert!(size > 0);
        assert_eq!(b.num_entries(), 0);
    }

    #[test]
    fn block_size_controls_block_count() {
        let env = MemEnv::new();
        let mk = |block_size: usize, path: &str| -> u64 {
            let f = env.create_writable(Path::new(path)).unwrap();
            let opts = TableBuilderOptions {
                block_size,
                compression: CompressionType::None,
                ..Default::default()
            };
            let mut b = TableBuilder::new(opts, f);
            for i in 0..1000 {
                let k = format!("key{i:06}");
                b.add(k.as_bytes(), &[0xab; 100]).unwrap();
            }
            b.finish().unwrap()
        };
        // Smaller blocks -> more index entries + trailers -> larger file.
        let small = mk(1024, "/small");
        let large = mk(16 * 1024, "/large");
        assert!(small > large, "small={small} large={large}");
    }
}
