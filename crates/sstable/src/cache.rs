//! A sharded LRU block cache (LevelDB's `Cache`), shared across all open
//! tables: keyed by (table id, block offset), charged by block size.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use crate::block::Block;

/// Number of shards (reduces lock contention, as in LevelDB's
/// `ShardedLRUCache`).
const SHARDS: usize = 16;

/// Globally unique id given to each opened table, used as the cache key
/// prefix (LevelDB's `NewId`).
static NEXT_CACHE_ID: AtomicU64 = AtomicU64::new(1);

/// Allocates a table cache id.
pub fn new_cache_id() -> u64 {
    NEXT_CACHE_ID.fetch_add(1, Ordering::Relaxed)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct Key {
    table: u64,
    offset: u64,
}

struct Entry {
    block: Block,
    charge: usize,
    /// LRU tick.
    used: u64,
}

struct Shard {
    map: HashMap<Key, Entry>,
    bytes: usize,
    tick: u64,
}

impl Shard {
    fn evict_to(&mut self, capacity: usize) {
        while self.bytes > capacity && !self.map.is_empty() {
            let victim = self
                .map
                .iter()
                .min_by_key(|(_, e)| e.used)
                .map(|(k, _)| *k)
                // PANIC-OK: the loop condition just checked !is_empty().
                .expect("non-empty map");
            if let Some(e) = self.map.remove(&victim) {
                self.bytes -= e.charge;
            }
        }
    }
}

/// The shared block cache.
pub struct BlockCache {
    shards: Vec<Mutex<Shard>>,
    capacity_per_shard: usize,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BlockCache {
    /// Creates a cache of roughly `capacity_bytes` total.
    pub fn new(capacity_bytes: usize) -> Arc<Self> {
        Arc::new(BlockCache {
            shards: (0..SHARDS)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        bytes: 0,
                        tick: 0,
                    })
                })
                .collect(),
            capacity_per_shard: (capacity_bytes / SHARDS).max(1),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
        })
    }

    fn shard_index(key: &Key) -> usize {
        // Mix so sequential offsets spread across shards.
        let h = key
            .table
            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
            .wrapping_add(key.offset.wrapping_mul(0xff51_afd7_ed55_8ccd));
        // Fold all 64 bits into the low bits before the modulo: the top
        // byte alone barely moves for small sequential table ids, which
        // piled every block onto a couple of shards.
        let folded = h ^ (h >> 32);
        let folded = folded ^ (folded >> 16);
        (folded as usize) % SHARDS
    }

    fn shard(&self, key: &Key) -> &Mutex<Shard> {
        &self.shards[Self::shard_index(key)]
    }

    /// Looks up the block for `(table_id, offset)`.
    pub fn get(&self, table_id: u64, offset: u64) -> Option<Block> {
        let key = Key {
            table: table_id,
            offset,
        };
        let mut shard = self.shard(&key).lock();
        shard.tick += 1;
        let tick = shard.tick;
        match shard.map.get_mut(&key) {
            Some(e) => {
                e.used = tick;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(e.block.clone())
            }
            None => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Inserts a block, evicting LRU entries past capacity.
    pub fn insert(&self, table_id: u64, offset: u64, block: Block) {
        let key = Key {
            table: table_id,
            offset,
        };
        let charge = block.size().max(1);
        let capacity = self.capacity_per_shard;
        let mut shard = self.shard(&key).lock();
        shard.tick += 1;
        let tick = shard.tick;
        if let Some(old) = shard.map.insert(
            key,
            Entry {
                block,
                charge,
                used: tick,
            },
        ) {
            shard.bytes -= old.charge;
        }
        shard.bytes += charge;
        shard.evict_to(capacity);
    }

    /// Drops every block belonging to `table_id` (file deleted).
    /// Returns the number of cached bytes freed.
    pub fn evict_table(&self, table_id: u64) -> usize {
        let mut freed = 0usize;
        for shard in &self.shards {
            let mut shard = shard.lock();
            let removed: Vec<Key> = shard
                .map
                .keys()
                .filter(|k| k.table == table_id)
                .copied()
                .collect();
            for k in removed {
                if let Some(e) = shard.map.remove(&k) {
                    shard.bytes -= e.charge;
                    freed += e.charge;
                }
            }
        }
        freed
    }

    /// Total cached bytes.
    pub fn bytes(&self) -> usize {
        self.shards.iter().map(|s| s.lock().bytes).sum()
    }

    /// (hits, misses) counters.
    pub fn stats(&self) -> (u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(n: usize) -> Block {
        // Minimal valid block: n filler bytes worth of one entry + trailer.
        let mut b = crate::block_builder::BlockBuilder::new(16);
        b.add(b"k", &vec![0u8; n]);
        Block::new(b.finish().to_vec().into()).unwrap()
    }

    #[test]
    fn hit_and_miss() {
        let c = BlockCache::new(1 << 20);
        assert!(c.get(1, 0).is_none());
        c.insert(1, 0, block(100));
        assert!(c.get(1, 0).is_some());
        assert!(c.get(1, 4096).is_none());
        assert!(c.get(2, 0).is_none());
        let (h, m) = c.stats();
        assert_eq!((h, m), (1, 3));
    }

    #[test]
    fn capacity_bounds_memory() {
        // Per-shard capacity 32 KiB ≈ 7 four-KiB blocks.
        let c = BlockCache::new((SHARDS * 32) << 10);
        for i in 0..1000u64 {
            c.insert(1, i * 4096, block(4096));
        }
        assert!(
            c.bytes() <= (SHARDS * 40) << 10,
            "bytes {} over capacity",
            c.bytes()
        );
        // Some recent inserts survive in their shards.
        assert!((990..1000u64).any(|i| c.get(1, i * 4096).is_some()));
    }

    #[test]
    fn lru_prefers_recent() {
        let c = BlockCache::new(SHARDS * 3000);
        // Per-shard capacity 3000 bytes ≈ 2 blocks of ~1100.
        for i in 0..6u64 {
            c.insert(1, i, block(1000));
        }
        // Touch the oldest surviving entries to refresh them, then insert
        // more and verify refresh helped at least once.
        let mut survivors: Vec<u64> = (0..6).filter(|&i| c.get(1, i).is_some()).collect();
        assert!(!survivors.is_empty());
        let refreshed = survivors.pop().unwrap();
        for i in 6..12u64 {
            c.insert(1, i, block(1000));
        }
        // The refreshed key is at least as likely to be present as any
        // unrefreshed one; just assert no panic and bounded memory.
        let _ = c.get(1, refreshed);
        assert!(c.bytes() <= SHARDS * 4500);
    }

    #[test]
    fn evict_table_removes_all() {
        let c = BlockCache::new(1 << 20);
        for i in 0..20u64 {
            c.insert(7, i * 4096, block(500));
            c.insert(8, i * 4096, block(500));
        }
        c.evict_table(7);
        for i in 0..20u64 {
            assert!(c.get(7, i * 4096).is_none());
        }
        assert!((0..20u64).any(|i| c.get(8, i * 4096).is_some()));
    }

    #[test]
    fn shard_distribution_over_sequential_keys() {
        // Regression: the old shard selector took only the top 8 bits of
        // the mixed hash, so sequential table ids × block offsets (the
        // access pattern every compaction produces) landed on a handful
        // of shards. Require every shard to take a reasonable share.
        let mut per_shard = [0usize; SHARDS];
        let mut total = 0usize;
        for table in 1..=32u64 {
            for block in 0..64u64 {
                let key = Key {
                    table,
                    offset: block * 4096,
                };
                per_shard[BlockCache::shard_index(&key)] += 1;
                total += 1;
            }
        }
        let avg = total / SHARDS;
        let min = *per_shard.iter().min().unwrap();
        let max = *per_shard.iter().max().unwrap();
        assert!(
            min * 3 >= avg,
            "underloaded shard: min {min} vs avg {avg} ({per_shard:?})"
        );
        assert!(
            max <= avg * 2,
            "overloaded shard: max {max} vs avg {avg} ({per_shard:?})"
        );
    }

    #[test]
    fn evict_table_reports_freed_bytes() {
        let c = BlockCache::new(1 << 20);
        c.insert(5, 0, block(500));
        c.insert(5, 4096, block(500));
        let before = c.bytes();
        assert!(before > 0);
        let freed = c.evict_table(5);
        assert_eq!(freed, before);
        assert_eq!(c.bytes(), 0);
        assert_eq!(c.evict_table(5), 0);
    }

    #[test]
    fn cache_ids_are_unique() {
        let a = new_cache_id();
        let b = new_cache_id();
        assert_ne!(a, b);
    }
}
