//! On-disk framing shared by all blocks: handles, footer, and the
//! compression + checksum trailer.

use bytes::Bytes;

use crate::coding::{decode_fixed32, get_varint64, put_fixed32, put_varint64};
use crate::crc32c;
use crate::env::RandomAccessFile;
use crate::{corruption, Result};

/// LevelDB's table magic number (picked by `echo http://code.google.com/p/leveldb/ | sha1sum`).
pub const TABLE_MAGIC_NUMBER: u64 = 0xdb47_7524_8b80_fb57;

/// Footer length: two maximally-encoded handles + 8-byte magic.
pub const FOOTER_ENCODED_LENGTH: usize = 2 * BlockHandle::MAX_ENCODED_LENGTH + 8;

/// Every block is followed by 1 compression byte + 4 CRC bytes.
pub const BLOCK_TRAILER_SIZE: usize = 5;

/// Compression tag stored in the block trailer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum CompressionType {
    /// Raw bytes.
    None = 0,
    /// Snappy-compressed (the paper's assumed codec).
    Snappy = 1,
}

impl CompressionType {
    /// Parses a trailer compression byte.
    pub fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(CompressionType::None),
            1 => Some(CompressionType::Snappy),
            _ => None,
        }
    }
}

/// Location of a block within a table file: offset + size, varint-encoded.
///
/// This is exactly the value format the paper's *Index Block Decoder*
/// parses to learn "the size and offset of a data block" (§V-A, Alg. 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BlockHandle {
    /// Byte offset of the block within the file.
    pub offset: u64,
    /// Size of the block contents, excluding the 5-byte trailer.
    pub size: u64,
}

impl BlockHandle {
    /// Two varint64s of at most 10 bytes each.
    pub const MAX_ENCODED_LENGTH: usize = 20;

    /// Creates a handle.
    pub fn new(offset: u64, size: u64) -> Self {
        BlockHandle { offset, size }
    }

    /// Appends the varint encoding to `dst`.
    pub fn encode_to(&self, dst: &mut Vec<u8>) {
        put_varint64(dst, self.offset);
        put_varint64(dst, self.size);
    }

    /// Encodes into a fresh vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(Self::MAX_ENCODED_LENGTH);
        self.encode_to(&mut v);
        v
    }

    /// Decodes from the front of `src`, returning the handle and bytes used.
    pub fn decode_from(src: &[u8]) -> Result<(BlockHandle, usize)> {
        let (offset, n1) =
            get_varint64(src).ok_or_else(|| corruption("bad block handle offset"))?;
        let (size, n2) =
            get_varint64(&src[n1..]).ok_or_else(|| corruption("bad block handle size"))?;
        Ok((BlockHandle { offset, size }, n1 + n2))
    }
}

/// Table footer: metaindex + index handles, zero padding, magic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Footer {
    /// Handle of the metaindex block (filter metablock directory).
    pub metaindex_handle: BlockHandle,
    /// Handle of the index block.
    pub index_handle: BlockHandle,
}

impl Footer {
    /// Encodes the footer to its fixed 48-byte representation.
    pub fn encode(&self) -> Vec<u8> {
        let mut dst = Vec::with_capacity(FOOTER_ENCODED_LENGTH);
        self.metaindex_handle.encode_to(&mut dst);
        self.index_handle.encode_to(&mut dst);
        dst.resize(FOOTER_ENCODED_LENGTH - 8, 0);
        dst.extend_from_slice(&(TABLE_MAGIC_NUMBER as u32).to_le_bytes());
        dst.extend_from_slice(&((TABLE_MAGIC_NUMBER >> 32) as u32).to_le_bytes());
        debug_assert_eq!(dst.len(), FOOTER_ENCODED_LENGTH);
        dst
    }

    /// Decodes and validates a footer.
    pub fn decode(src: &[u8]) -> Result<Footer> {
        if src.len() < FOOTER_ENCODED_LENGTH {
            return Err(corruption("footer too short"));
        }
        let magic_lo = decode_fixed32(&src[FOOTER_ENCODED_LENGTH - 8..]) as u64;
        let magic_hi = decode_fixed32(&src[FOOTER_ENCODED_LENGTH - 4..]) as u64;
        let magic = (magic_hi << 32) | magic_lo;
        if magic != TABLE_MAGIC_NUMBER {
            return Err(corruption(format!("bad table magic {magic:#x}")));
        }
        let (metaindex_handle, n) = BlockHandle::decode_from(src)?;
        let (index_handle, _) = BlockHandle::decode_from(&src[n..])?;
        Ok(Footer {
            metaindex_handle,
            index_handle,
        })
    }
}

/// Frames block contents for writing: appends the compression tag and the
/// masked CRC (over contents + tag), returning the bytes to write and the
/// tag actually used (compression is skipped when it does not help,
/// mirroring LevelDB's 12.5% rule).
pub fn frame_block(
    contents: &[u8],
    requested: CompressionType,
    scratch: &mut Vec<u8>,
) -> (CompressionType, Vec<u8>) {
    let mut framed = Vec::with_capacity(contents.len() + BLOCK_TRAILER_SIZE);
    let (ty, _) = frame_block_into(contents, requested, scratch, &mut framed);
    (ty, framed)
}

/// Like [`frame_block`] but appends the framed block (payload + trailer)
/// to `out` instead of allocating a fresh buffer, returning the tag used
/// and the framed length appended. Lets encoders frame straight into a
/// long-lived output memory with zero per-block allocation.
pub fn frame_block_into(
    contents: &[u8],
    requested: CompressionType,
    scratch: &mut Vec<u8>,
    out: &mut Vec<u8>,
) -> (CompressionType, usize) {
    let (ty, payload): (CompressionType, &[u8]) = match requested {
        CompressionType::None => (CompressionType::None, contents),
        CompressionType::Snappy => {
            scratch.clear();
            let mut enc = snap_codec::Encoder::new();
            enc.compress_into(contents, scratch);
            if scratch.len() < contents.len() - contents.len() / 8 {
                (CompressionType::Snappy, scratch.as_slice())
            } else {
                (CompressionType::None, contents)
            }
        }
    };
    let start = out.len();
    out.extend_from_slice(payload);
    out.push(ty as u8);
    let crc = crc32c::extend(crc32c::value(payload), &[ty as u8]);
    put_fixed32(out, crc32c::mask(crc));
    (ty, out.len() - start)
}

/// Reads and verifies one block (contents + trailer) from `file` at
/// `handle`, decompressing if needed.
pub fn read_block(
    file: &dyn RandomAccessFile,
    handle: &BlockHandle,
    verify_checksums: bool,
) -> Result<Bytes> {
    let n = handle.size as usize;
    let mut buf = vec![0u8; n + BLOCK_TRAILER_SIZE];
    let read = file.read_at(handle.offset, &mut buf)?;
    if read != buf.len() {
        return Err(corruption(format!(
            "truncated block read: wanted {} got {read}",
            buf.len()
        )));
    }
    let ty_byte = buf[n];
    if verify_checksums {
        let stored = crc32c::unmask(decode_fixed32(&buf[n + 1..]));
        let actual = crc32c::value(&buf[..n + 1]);
        if stored != actual {
            return Err(corruption(format!(
                "block checksum mismatch at offset {}",
                handle.offset
            )));
        }
    }
    let ty = CompressionType::from_u8(ty_byte)
        .ok_or_else(|| corruption(format!("unknown compression tag {ty_byte}")))?;
    buf.truncate(n);
    match ty {
        CompressionType::None => Ok(Bytes::from(buf)),
        CompressionType::Snappy => Ok(Bytes::from(snap_codec::decompress(&buf)?)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::env::{MemEnv, StorageEnv};
    use std::path::Path;

    #[test]
    fn block_handle_roundtrip() {
        for (off, size) in [
            (0u64, 0u64),
            (1, 2),
            (u32::MAX as u64, 4096),
            (u64::MAX, u64::MAX),
        ] {
            let h = BlockHandle::new(off, size);
            let enc = h.encode();
            let (dec, n) = BlockHandle::decode_from(&enc).unwrap();
            assert_eq!(dec, h);
            assert_eq!(n, enc.len());
        }
    }

    #[test]
    fn footer_roundtrip_and_magic_check() {
        let f = Footer {
            metaindex_handle: BlockHandle::new(1000, 42),
            index_handle: BlockHandle::new(2000, 99),
        };
        let enc = f.encode();
        assert_eq!(enc.len(), FOOTER_ENCODED_LENGTH);
        assert_eq!(Footer::decode(&enc).unwrap(), f);

        let mut bad = enc.clone();
        let last = bad.len() - 1;
        bad[last] ^= 0xff;
        assert!(Footer::decode(&bad).is_err());
        assert!(Footer::decode(&enc[..10]).is_err());
    }

    fn write_file(env: &MemEnv, path: &Path, data: &[u8]) {
        let mut w = env.create_writable(path).unwrap();
        w.append(data).unwrap();
    }

    #[test]
    fn frame_and_read_block_uncompressed() {
        let env = MemEnv::new();
        let contents = b"some block contents that are totally random: 1234";
        let mut scratch = Vec::new();
        let (ty, framed) = frame_block(contents, CompressionType::None, &mut scratch);
        assert_eq!(ty, CompressionType::None);
        write_file(&env, Path::new("/b"), &framed);
        let f = env.open_random_access(Path::new("/b")).unwrap();
        let h = BlockHandle::new(0, contents.len() as u64);
        let got = read_block(f.as_ref(), &h, true).unwrap();
        assert_eq!(&got[..], contents);
    }

    #[test]
    fn frame_and_read_block_snappy() {
        let env = MemEnv::new();
        let contents = b"abcabcabcabcabcabcabcabc".repeat(100);
        let mut scratch = Vec::new();
        let (ty, framed) = frame_block(&contents, CompressionType::Snappy, &mut scratch);
        assert_eq!(ty, CompressionType::Snappy);
        assert!(framed.len() < contents.len());
        write_file(&env, Path::new("/b"), &framed);
        let f = env.open_random_access(Path::new("/b")).unwrap();
        let h = BlockHandle::new(0, (framed.len() - BLOCK_TRAILER_SIZE) as u64);
        let got = read_block(f.as_ref(), &h, true).unwrap();
        assert_eq!(&got[..], &contents[..]);
    }

    #[test]
    fn incompressible_blocks_fall_back_to_raw() {
        let mut x = 1u64;
        let contents: Vec<u8> = (0..4096)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect();
        let mut scratch = Vec::new();
        let (ty, _) = frame_block(&contents, CompressionType::Snappy, &mut scratch);
        assert_eq!(ty, CompressionType::None);
    }

    #[test]
    fn corrupt_block_detected_by_crc() {
        let env = MemEnv::new();
        let contents = b"payload payload payload";
        let mut scratch = Vec::new();
        let (_, mut framed) = frame_block(contents, CompressionType::None, &mut scratch);
        framed[3] ^= 0x01;
        write_file(&env, Path::new("/b"), &framed);
        let f = env.open_random_access(Path::new("/b")).unwrap();
        let h = BlockHandle::new(0, contents.len() as u64);
        assert!(read_block(f.as_ref(), &h, true).is_err());
        // With verification off, the corruption passes through.
        assert!(read_block(f.as_ref(), &h, false).is_ok());
    }

    #[test]
    fn truncated_block_read_is_error() {
        let env = MemEnv::new();
        write_file(&env, Path::new("/b"), b"tiny");
        let f = env.open_random_access(Path::new("/b")).unwrap();
        let h = BlockHandle::new(0, 100);
        assert!(read_block(f.as_ref(), &h, true).is_err());
    }
}
