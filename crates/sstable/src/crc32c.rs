//! CRC32C (Castagnoli) with LevelDB's mask/unmask scheme. On x86-64 with
//! SSE 4.2 the hardware `crc32` instruction is used (the Castagnoli
//! polynomial is the one the instruction implements); elsewhere a
//! slice-by-8 table provides the fallback. The checksum runs over every
//! block written or read, so this is squarely on the compaction hot path.

const POLY: u32 = 0x82f6_3b78; // reflected Castagnoli polynomial

/// Eight 256-entry tables for slice-by-8.
struct Tables([[u32; 256]; 8]);

static TABLES: Tables = build_tables();

const fn build_tables() -> Tables {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut k = 0;
        while k < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            k += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut n = 1;
    while n < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[n - 1][i];
            t[n][i] = (prev >> 8) ^ t[0][(prev & 0xff) as usize];
            i += 1;
        }
        n += 1;
    }
    Tables(t)
}

/// Computes the CRC32C of `data` starting from an initial value
/// (use 0 for a fresh checksum).
pub fn extend(init: u32, data: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("sse4.2") {
            // SAFETY: guarded by the runtime feature check above.
            return unsafe { extend_hw(init, data) };
        }
    }
    extend_sw(init, data)
}

/// Hardware CRC32C via the SSE 4.2 `crc32` instruction, 8 bytes at a time.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "sse4.2")]
// SAFETY: `unsafe` only because of `target_feature`; callers must have
// verified SSE 4.2 support (the sole caller, `extend`, feature-detects at
// runtime). The body itself performs no raw-pointer or aliasing tricks.
unsafe fn extend_hw(init: u32, data: &[u8]) -> u32 {
    use std::arch::x86_64::{_mm_crc32_u64, _mm_crc32_u8};
    let mut crc = u64::from(!init);
    let mut chunks = data.chunks_exact(8);
    for c in chunks.by_ref() {
        // PANIC-OK: chunks_exact(8) yields exactly 8-byte slices.
        crc = _mm_crc32_u64(crc, u64::from_le_bytes(c.try_into().unwrap()));
    }
    let mut crc = crc as u32;
    for &b in chunks.remainder() {
        crc = _mm_crc32_u8(crc, b);
    }
    !crc
}

/// Table-driven (slice-by-8) CRC32C for platforms without the instruction.
fn extend_sw(init: u32, data: &[u8]) -> u32 {
    let t = &TABLES.0;
    let mut crc = !init;
    let mut chunks = data.chunks_exact(8);
    for c in chunks.by_ref() {
        // PANIC-OK: chunks_exact(8) yields exactly 8-byte slices.
        let lo = crc ^ u32::from_le_bytes(c[..4].try_into().unwrap());
        // PANIC-OK: same 8-byte chunk as the line above.
        let hi = u32::from_le_bytes(c[4..8].try_into().unwrap());
        crc = t[7][(lo & 0xff) as usize]
            ^ t[6][((lo >> 8) & 0xff) as usize]
            ^ t[5][((lo >> 16) & 0xff) as usize]
            ^ t[4][(lo >> 24) as usize]
            ^ t[3][(hi & 0xff) as usize]
            ^ t[2][((hi >> 8) & 0xff) as usize]
            ^ t[1][((hi >> 16) & 0xff) as usize]
            ^ t[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ t[0][((crc ^ u32::from(b)) & 0xff) as usize];
    }
    !crc
}

/// CRC32C of `data` from scratch.
pub fn value(data: &[u8]) -> u32 {
    extend(0, data)
}

const MASK_DELTA: u32 = 0xa282_ead8;

/// LevelDB masks stored CRCs so that computing the CRC of a string that
/// itself contains embedded CRCs does not degenerate.
pub fn mask(crc: u32) -> u32 {
    crc.rotate_right(15).wrapping_add(MASK_DELTA)
}

/// Inverse of [`mask`].
pub fn unmask(masked: u32) -> u32 {
    masked.wrapping_sub(MASK_DELTA).rotate_left(15)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_vectors() {
        // RFC 3720 / well-known CRC32C test vectors.
        assert_eq!(value(&[0u8; 32]), 0x8a91_36aa);
        assert_eq!(value(&[0xffu8; 32]), 0x62a8_ab43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(value(&ascending), 0x46dd_794e);
        let descending: Vec<u8> = (0u8..32).rev().collect();
        assert_eq!(value(&descending), 0x113f_db5c);
        assert_eq!(value(b"123456789"), 0xe306_9283);
    }

    #[test]
    fn extend_equals_concat() {
        let a = b"hello ";
        let b = b"world";
        let whole = value(b"hello world");
        assert_eq!(extend(value(a), b), whole);
    }

    #[test]
    fn distinct_inputs_distinct_crcs() {
        assert_ne!(value(b"a"), value(b"foo"));
        assert_ne!(value(b"foo"), value(b"bar"));
    }

    #[test]
    fn mask_roundtrip_and_differs() {
        let crc = value(b"foo");
        assert_ne!(crc, mask(crc));
        assert_ne!(crc, mask(mask(crc)));
        assert_eq!(crc, unmask(mask(crc)));
        assert_eq!(crc, unmask(unmask(mask(mask(crc)))));
    }

    #[test]
    fn hardware_and_software_paths_agree() {
        let mut data = Vec::new();
        for i in 0..600u32 {
            data.push((i.wrapping_mul(2_654_435_761) >> 23) as u8);
            // `value` may pick the hardware path; `extend_sw` never does.
            assert_eq!(value(&data), extend_sw(0, &data), "len {}", data.len());
            let (a, b) = data.split_at(data.len() / 2);
            assert_eq!(extend(extend_sw(0, a), b), value(&data));
        }
    }

    #[test]
    fn slice_by_8_matches_bitwise_reference() {
        fn bitwise(data: &[u8]) -> u32 {
            let mut crc = !0u32;
            for &b in data {
                crc ^= u32::from(b);
                for _ in 0..8 {
                    crc = if crc & 1 != 0 {
                        (crc >> 1) ^ POLY
                    } else {
                        crc >> 1
                    };
                }
            }
            !crc
        }
        let mut data = Vec::new();
        for i in 0..1000u32 {
            data.push((i.wrapping_mul(2_654_435_761) >> 24) as u8);
            assert_eq!(value(&data), bitwise(&data), "len {}", data.len());
        }
    }
}
