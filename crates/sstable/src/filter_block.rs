//! Filter metablock: one bloom filter per 2 KiB range of data-block
//! offsets, exactly LevelDB's `FilterBlockBuilder`/`FilterBlockReader`.
//!
//! Layout: `[filter 0][filter 1]... [offset of filter 0 (fixed32)]...
//! [offset of offsets array (fixed32)][base_lg (1 byte)]`.

use crate::bloom::BloomFilterPolicy;
use crate::coding::{decode_fixed32, put_fixed32};

/// Generate a new filter every 2 KiB of data-block offset space.
const FILTER_BASE_LG: u8 = 11;
const FILTER_BASE: u64 = 1 << FILTER_BASE_LG;

/// Builds the filter metablock alongside table construction.
pub struct FilterBlockBuilder {
    policy: BloomFilterPolicy,
    /// Flattened key bytes for the current filter.
    keys: Vec<u8>,
    /// Start offset of each key in `keys`.
    starts: Vec<usize>,
    /// Accumulated filter bytes.
    result: Vec<u8>,
    /// Offset of each generated filter within `result`.
    filter_offsets: Vec<u32>,
}

impl FilterBlockBuilder {
    /// Creates a builder using `policy` for filter generation.
    pub fn new(policy: BloomFilterPolicy) -> Self {
        FilterBlockBuilder {
            policy,
            keys: Vec::new(),
            starts: Vec::new(),
            result: Vec::new(),
            filter_offsets: Vec::new(),
        }
    }

    /// Declares that a new data block starts at `block_offset`; emits
    /// filters for all fully covered 2 KiB ranges before it.
    pub fn start_block(&mut self, block_offset: u64) {
        let filter_index = block_offset / FILTER_BASE;
        debug_assert!(filter_index >= self.filter_offsets.len() as u64);
        while (self.filter_offsets.len() as u64) < filter_index {
            self.generate_filter();
        }
    }

    /// Adds a key that belongs to the current data block.
    pub fn add_key(&mut self, key: &[u8]) {
        self.starts.push(self.keys.len());
        self.keys.extend_from_slice(key);
    }

    /// Finalizes and returns the filter block contents.
    pub fn finish(&mut self) -> &[u8] {
        if !self.starts.is_empty() {
            self.generate_filter();
        }
        let array_offset = self.result.len() as u32;
        let offsets = std::mem::take(&mut self.filter_offsets);
        for off in &offsets {
            put_fixed32(&mut self.result, *off);
        }
        put_fixed32(&mut self.result, array_offset);
        self.result.push(FILTER_BASE_LG);
        &self.result
    }

    fn generate_filter(&mut self) {
        self.filter_offsets.push(self.result.len() as u32);
        if self.starts.is_empty() {
            // Empty range: record the offset, emit no bytes.
            return;
        }
        self.starts.push(self.keys.len()); // sentinel
        let key_slices: Vec<&[u8]> = self
            .starts
            .windows(2)
            .map(|w| &self.keys[w[0]..w[1]])
            .collect();
        self.policy.create_filter(&key_slices, &mut self.result);
        self.keys.clear();
        self.starts.clear();
    }
}

/// Reads a filter metablock.
pub struct FilterBlockReader {
    policy: BloomFilterPolicy,
    data: Vec<u8>,
    /// Offset of the offsets array.
    array_offset: usize,
    num_filters: usize,
    base_lg: u8,
}

impl FilterBlockReader {
    /// Wraps raw filter block contents; returns `None` on malformed input.
    pub fn new(policy: BloomFilterPolicy, data: Vec<u8>) -> Option<Self> {
        if data.len() < 5 {
            return None;
        }
        let base_lg = data[data.len() - 1];
        let array_offset = decode_fixed32(&data[data.len() - 5..]) as usize;
        if array_offset > data.len() - 5 {
            return None;
        }
        let num_filters = (data.len() - 5 - array_offset) / 4;
        Some(FilterBlockReader {
            policy,
            data,
            array_offset,
            num_filters,
            base_lg,
        })
    }

    /// True if `key` may be present in the data block at `block_offset`.
    pub fn key_may_match(&self, block_offset: u64, key: &[u8]) -> bool {
        let index = (block_offset >> self.base_lg) as usize;
        if index >= self.num_filters {
            // No filter recorded: do not exclude.
            return true;
        }
        let start = decode_fixed32(&self.data[self.array_offset + index * 4..]) as usize;
        let limit = if index + 1 < self.num_filters {
            decode_fixed32(&self.data[self.array_offset + (index + 1) * 4..]) as usize
        } else {
            self.array_offset
        };
        if start > limit || limit > self.array_offset {
            return true; // malformed: fail open
        }
        if start == limit {
            // Empty filter covers no keys.
            return false;
        }
        self.policy.key_may_match(key, &self.data[start..limit])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn policy() -> BloomFilterPolicy {
        BloomFilterPolicy::new(10)
    }

    #[test]
    fn empty_builder_produces_valid_block() {
        let mut b = FilterBlockBuilder::new(policy());
        let block = b.finish().to_vec();
        assert_eq!(block.len(), 5);
        let r = FilterBlockReader::new(policy(), block).unwrap();
        // No filters recorded: fail open.
        assert!(r.key_may_match(0, b"foo"));
        assert!(r.key_may_match(100_000, b"foo"));
    }

    #[test]
    fn single_block_filter() {
        let mut b = FilterBlockBuilder::new(policy());
        b.start_block(100);
        b.add_key(b"foo");
        b.add_key(b"bar");
        b.add_key(b"box");
        let block = b.finish().to_vec();
        let r = FilterBlockReader::new(policy(), block).unwrap();
        assert!(r.key_may_match(100, b"foo"));
        assert!(r.key_may_match(100, b"bar"));
        assert!(!r.key_may_match(100, b"missing-key"));
        assert!(!r.key_may_match(100, b"other"));
    }

    #[test]
    fn multi_range_filters_are_independent() {
        let mut b = FilterBlockBuilder::new(policy());
        b.start_block(0);
        b.add_key(b"alpha");
        b.start_block(3000); // second 2 KiB range
        b.add_key(b"bravo");
        b.start_block(9000); // skips ranges 2..3 (empty filters)
        b.add_key(b"charlie");
        let block = b.finish().to_vec();
        let r = FilterBlockReader::new(policy(), block).unwrap();

        assert!(r.key_may_match(0, b"alpha"));
        assert!(!r.key_may_match(0, b"bravo"));
        assert!(r.key_may_match(3000, b"bravo"));
        assert!(!r.key_may_match(3000, b"alpha"));
        assert!(r.key_may_match(9000, b"charlie"));
        // Empty in-between range: nothing matches.
        assert!(!r.key_may_match(4500, b"alpha"));
        assert!(!r.key_may_match(4500, b"charlie"));
    }

    #[test]
    fn malformed_block_rejected_or_fails_open() {
        assert!(FilterBlockReader::new(policy(), vec![]).is_none());
        assert!(FilterBlockReader::new(policy(), vec![1, 2, 3]).is_none());
        // array_offset beyond the block.
        let mut bad = vec![0u8; 3];
        bad.extend_from_slice(&100u32.to_le_bytes());
        bad.push(11);
        assert!(FilterBlockReader::new(policy(), bad).is_none());
    }
}
