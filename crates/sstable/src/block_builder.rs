//! Data/index block construction with prefix compression and restart
//! points (LevelDB `BlockBuilder`).
//!
//! Entry layout: `varint32 shared | varint32 non_shared | varint32
//! value_len | key[shared..] | value`. Every `restart_interval` entries the
//! shared prefix resets to zero and the entry offset is recorded in the
//! restart array appended at the end of the block:
//! `restart[0..n] (fixed32 each) | fixed32 n`.

use crate::coding::{put_fixed32, put_varint32};

/// Incremental builder for one block.
pub struct BlockBuilder {
    buffer: Vec<u8>,
    restarts: Vec<u32>,
    restart_interval: usize,
    counter: usize,
    last_key: Vec<u8>,
    finished: bool,
}

impl BlockBuilder {
    /// Creates a builder; LevelDB's default restart interval is 16.
    pub fn new(restart_interval: usize) -> Self {
        assert!(restart_interval >= 1);
        BlockBuilder {
            buffer: Vec::new(),
            restarts: vec![0],
            restart_interval,
            counter: 0,
            last_key: Vec::new(),
            finished: false,
        }
    }

    /// Appends an entry. Keys must be added in strictly increasing order
    /// (the caller — `TableBuilder` — enforces the comparator order;
    /// this type only assumes byte-prefix sharing is meaningful).
    pub fn add(&mut self, key: &[u8], value: &[u8]) {
        debug_assert!(!self.finished, "add after finish");
        let mut shared = 0usize;
        if self.counter < self.restart_interval {
            let min_len = self.last_key.len().min(key.len());
            while shared < min_len && self.last_key[shared] == key[shared] {
                shared += 1;
            }
        } else {
            self.restarts.push(self.buffer.len() as u32);
            self.counter = 0;
        }
        let non_shared = key.len() - shared;
        put_varint32(&mut self.buffer, shared as u32);
        put_varint32(&mut self.buffer, non_shared as u32);
        put_varint32(&mut self.buffer, value.len() as u32);
        self.buffer.extend_from_slice(&key[shared..]);
        self.buffer.extend_from_slice(value);

        self.last_key.clear();
        self.last_key.extend_from_slice(key);
        self.counter += 1;
    }

    /// Appends the restart array and count, returning the block contents.
    pub fn finish(&mut self) -> &[u8] {
        for &r in &self.restarts {
            put_fixed32(&mut self.buffer, r);
        }
        put_fixed32(&mut self.buffer, self.restarts.len() as u32);
        self.finished = true;
        &self.buffer
    }

    /// Resets for reuse on the next block.
    pub fn reset(&mut self) {
        self.buffer.clear();
        self.restarts.clear();
        self.restarts.push(0);
        self.counter = 0;
        self.last_key.clear();
        self.finished = false;
    }

    /// Estimated size of the finished block (contents + restart array).
    pub fn current_size_estimate(&self) -> usize {
        self.buffer.len() + self.restarts.len() * 4 + 4
    }

    /// True if no entries have been added since the last reset.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// The last key added (empty before the first add).
    pub fn last_key(&self) -> &[u8] {
        &self.last_key
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::block::Block;
    use crate::comparator::BytewiseComparator;
    use std::sync::Arc;

    fn build_and_read(entries: &[(&[u8], &[u8])], interval: usize) {
        let mut b = BlockBuilder::new(interval);
        for (k, v) in entries {
            b.add(k, v);
        }
        let contents = b.finish().to_vec();
        let block = Block::new(contents.into()).unwrap();
        let mut it = block.iter(Arc::new(BytewiseComparator));
        it.seek_to_first();
        for (k, v) in entries {
            assert!(it.valid());
            assert_eq!(it.key(), *k);
            assert_eq!(it.value(), *v);
            it.next();
        }
        assert!(!it.valid());
    }

    #[test]
    fn empty_block_roundtrip() {
        let mut b = BlockBuilder::new(16);
        let contents = b.finish().to_vec();
        let block = Block::new(contents.into()).unwrap();
        let mut it = block.iter(Arc::new(BytewiseComparator));
        it.seek_to_first();
        assert!(!it.valid());
    }

    #[test]
    fn prefix_compression_roundtrip() {
        build_and_read(
            &[
                (b"apple", b"1"),
                (b"application", b"2"),
                (b"apply", b"3"),
                (b"banana", b"4"),
                (b"band", b"5"),
            ],
            16,
        );
    }

    #[test]
    fn restart_interval_one_disables_sharing() {
        let entries: Vec<(Vec<u8>, Vec<u8>)> = (0..50)
            .map(|i| {
                (
                    format!("key{i:04}").into_bytes(),
                    format!("v{i}").into_bytes(),
                )
            })
            .collect();
        let refs: Vec<(&[u8], &[u8])> = entries
            .iter()
            .map(|(k, v)| (k.as_slice(), v.as_slice()))
            .collect();
        build_and_read(&refs, 1);
        build_and_read(&refs, 3);
        build_and_read(&refs, 16);
    }

    #[test]
    fn size_estimate_matches_finish() {
        let mut b = BlockBuilder::new(4);
        for i in 0..100 {
            let k = format!("key{i:06}");
            b.add(k.as_bytes(), b"some value bytes");
        }
        let est = b.current_size_estimate();
        let actual = b.finish().len();
        assert_eq!(est, actual);
    }

    #[test]
    fn reset_clears_state() {
        let mut b = BlockBuilder::new(16);
        b.add(b"aaa", b"1");
        b.finish();
        b.reset();
        assert!(b.is_empty());
        b.add(b"bbb", b"2");
        let contents = b.finish().to_vec();
        let block = Block::new(contents.into()).unwrap();
        let mut it = block.iter(Arc::new(BytewiseComparator));
        it.seek_to_first();
        assert_eq!(it.key(), b"bbb");
        it.next();
        assert!(!it.valid());
    }

    #[test]
    fn empty_value_and_empty_first_key() {
        build_and_read(&[(b"", b""), (b"a", b""), (b"b", b"x")], 16);
    }
}
