//! Internal keys: `user_key ++ fixed64(sequence << 8 | type)`.
//!
//! The 8-byte trailer is what the paper calls the key's "mark fields"
//! (§V-A, footnote 1: `L_key = 16 real key + 8 mark`). The FPGA Comparer's
//! *Validity Check* inspects exactly these bytes: the type byte decides
//! whether the entry is a live value or a deletion tombstone, and the
//! sequence number decides which of several versions of a user key wins.

use crate::coding::{decode_fixed64, put_fixed64};

/// Monotonic version counter assigned by the write path.
pub type SequenceNumber = u64;

/// Sequence numbers use 56 bits; the low 8 bits of the trailer hold the type.
pub const MAX_SEQUENCE_NUMBER: SequenceNumber = (1 << 56) - 1;

/// Entry kind stored in the trailer's low byte.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum ValueType {
    /// Deletion tombstone (the paper's *Delete flag*).
    Deletion = 0,
    /// Live value.
    Value = 1,
}

impl ValueType {
    /// Parses the trailer's type byte.
    pub fn from_u8(v: u8) -> Option<ValueType> {
        match v {
            0 => Some(ValueType::Deletion),
            1 => Some(ValueType::Value),
            _ => None,
        }
    }
}

/// Type used when constructing seek targets: `Value` is the highest type
/// value, so seeks find the freshest entry for a sequence number.
pub const VALUE_TYPE_FOR_SEEK: ValueType = ValueType::Value;

/// Packs sequence + type into the 8-byte trailer value.
#[inline]
pub fn pack_sequence_and_type(seq: SequenceNumber, t: ValueType) -> u64 {
    debug_assert!(seq <= MAX_SEQUENCE_NUMBER);
    (seq << 8) | t as u64
}

/// The maximal trailer, used for separator keys.
#[inline]
pub fn pack_tag_max() -> u64 {
    pack_sequence_and_type(MAX_SEQUENCE_NUMBER, VALUE_TYPE_FOR_SEEK)
}

/// Appends `user_key ++ trailer` to `dst`.
pub fn append_internal_key(dst: &mut Vec<u8>, user_key: &[u8], seq: SequenceNumber, t: ValueType) {
    dst.extend_from_slice(user_key);
    put_fixed64(dst, pack_sequence_and_type(seq, t));
}

/// A borrowed, decomposed view of an internal key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ParsedInternalKey<'a> {
    /// The user-visible key bytes.
    pub user_key: &'a [u8],
    /// Sequence number extracted from the trailer.
    pub sequence: SequenceNumber,
    /// Entry kind extracted from the trailer.
    pub value_type: ValueType,
}

/// Splits an internal key into its parts; `None` if it is too short or has
/// an unknown type byte.
pub fn parse_internal_key(ikey: &[u8]) -> Option<ParsedInternalKey<'_>> {
    if ikey.len() < 8 {
        return None;
    }
    let tag = decode_fixed64(&ikey[ikey.len() - 8..]);
    let value_type = ValueType::from_u8((tag & 0xff) as u8)?;
    Some(ParsedInternalKey {
        user_key: &ikey[..ikey.len() - 8],
        sequence: tag >> 8,
        value_type,
    })
}

/// Extracts the user-key prefix of an internal key.
///
/// # Panics
/// Panics if `ikey` is shorter than the 8-byte trailer.
#[inline]
pub fn extract_user_key(ikey: &[u8]) -> &[u8] {
    assert!(ikey.len() >= 8, "internal key too short");
    &ikey[..ikey.len() - 8]
}

/// An owned internal key.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct InternalKey(Vec<u8>);

impl InternalKey {
    /// Builds an internal key from parts.
    pub fn new(user_key: &[u8], seq: SequenceNumber, t: ValueType) -> Self {
        let mut buf = Vec::with_capacity(user_key.len() + 8);
        append_internal_key(&mut buf, user_key, seq, t);
        InternalKey(buf)
    }

    /// Wraps already-encoded internal key bytes.
    pub fn from_encoded(bytes: Vec<u8>) -> Self {
        debug_assert!(bytes.is_empty() || bytes.len() >= 8);
        InternalKey(bytes)
    }

    /// The encoded bytes.
    pub fn encoded(&self) -> &[u8] {
        &self.0
    }

    /// The user-key portion.
    pub fn user_key(&self) -> &[u8] {
        extract_user_key(&self.0)
    }

    /// True for a default-constructed (empty) key.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

/// A seek key usable against both the memtable format (length-prefixed
/// internal key) and the table format (bare internal key).
pub struct LookupKey {
    buf: Vec<u8>,
    /// Offset where the internal key starts (after the length prefix).
    ikey_offset: usize,
}

impl LookupKey {
    /// Builds a lookup key for `user_key` at snapshot `seq`.
    pub fn new(user_key: &[u8], seq: SequenceNumber) -> Self {
        let mut buf = Vec::with_capacity(user_key.len() + 13);
        crate::coding::put_varint32(&mut buf, (user_key.len() + 8) as u32);
        let ikey_offset = buf.len();
        append_internal_key(&mut buf, user_key, seq, VALUE_TYPE_FOR_SEEK);
        LookupKey { buf, ikey_offset }
    }

    /// Memtable format: varint length + internal key.
    pub fn memtable_key(&self) -> &[u8] {
        &self.buf
    }

    /// Bare internal key.
    pub fn internal_key(&self) -> &[u8] {
        &self.buf[self.ikey_offset..]
    }

    /// User-key portion only.
    pub fn user_key(&self) -> &[u8] {
        &self.buf[self.ikey_offset..self.buf.len() - 8]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_parse_roundtrip() {
        for seq in [0u64, 1, 255, 256, MAX_SEQUENCE_NUMBER] {
            for t in [ValueType::Deletion, ValueType::Value] {
                let k = InternalKey::new(b"user", seq, t);
                let p = parse_internal_key(k.encoded()).unwrap();
                assert_eq!(p.user_key, b"user");
                assert_eq!(p.sequence, seq);
                assert_eq!(p.value_type, t);
            }
        }
    }

    #[test]
    fn parse_rejects_short_and_bad_type() {
        assert!(parse_internal_key(b"short").is_none());
        let mut k = Vec::new();
        append_internal_key(&mut k, b"u", 7, ValueType::Value);
        let last = k.len() - 8;
        k[last] = 9; // invalid type byte
        assert!(parse_internal_key(&k).is_none());
    }

    #[test]
    fn trailer_is_exactly_eight_bytes() {
        // The paper's L_key arithmetic depends on this: 16-byte user keys
        // yield 24-byte internal keys.
        let k = InternalKey::new(&[0xabu8; 16], 42, ValueType::Value);
        assert_eq!(k.encoded().len(), 24);
    }

    #[test]
    fn lookup_key_views_agree() {
        let lk = LookupKey::new(b"needle", 77);
        assert_eq!(lk.user_key(), b"needle");
        let p = parse_internal_key(lk.internal_key()).unwrap();
        assert_eq!(p.sequence, 77);
        assert_eq!(p.value_type, VALUE_TYPE_FOR_SEEK);
        // memtable key = varint len + internal key
        let (len, n) = crate::coding::get_varint32(lk.memtable_key()).unwrap();
        assert_eq!(len as usize, lk.internal_key().len());
        assert_eq!(&lk.memtable_key()[n..], lk.internal_key());
    }
}
