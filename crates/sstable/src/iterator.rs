//! The internal iterator abstraction and the k-way merging iterator that
//! CPU compaction and reads are built on.
//!
//! The merging iterator is the software equivalent of the paper's
//! *Comparer* stage: it repeatedly selects the smallest key across N
//! decoded input streams.

use std::cmp::Ordering;
use std::sync::Arc;

use crate::comparator::Comparator;
use crate::Result;

/// A cursor over ordered key/value entries.
///
/// Unlike `std::iter::Iterator`, it is seekable and exposes borrowed
/// key/value views of the current entry, mirroring LevelDB's `Iterator`.
pub trait InternalIterator {
    /// True when positioned on an entry.
    fn valid(&self) -> bool;
    /// Positions on the first entry.
    fn seek_to_first(&mut self);
    /// Positions on the last entry.
    fn seek_to_last(&mut self);
    /// Positions on the first entry with key >= `target`.
    fn seek(&mut self, target: &[u8]);
    /// Advances; requires `valid()`.
    fn next(&mut self);
    /// Retreats; requires `valid()`.
    fn prev(&mut self);
    /// Current key; requires `valid()`.
    fn key(&self) -> &[u8];
    /// Current value; requires `valid()`.
    fn value(&self) -> &[u8];
    /// First error encountered, if any.
    fn status(&self) -> Result<()>;
}

/// An always-empty iterator.
#[derive(Default)]
pub struct EmptyIterator;

impl InternalIterator for EmptyIterator {
    fn valid(&self) -> bool {
        false
    }
    fn seek_to_first(&mut self) {}
    fn seek_to_last(&mut self) {}
    fn seek(&mut self, _target: &[u8]) {}
    fn next(&mut self) {
        // PANIC-OK: InternalIterator contract — never valid(), so
        // position/accessor calls are caller bugs.
        unreachable!("next on empty iterator")
    }
    fn prev(&mut self) {
        // PANIC-OK: see next().
        unreachable!("prev on empty iterator")
    }
    fn key(&self) -> &[u8] {
        // PANIC-OK: see next().
        unreachable!("key on empty iterator")
    }
    fn value(&self) -> &[u8] {
        // PANIC-OK: see next().
        unreachable!("value on empty iterator")
    }
    fn status(&self) -> Result<()> {
        Ok(())
    }
}

/// An iterator over an in-memory vector of (key, value) pairs, sorted by
/// the caller. Used in tests and as a building block for memtable dumps.
pub struct VecIterator {
    entries: Arc<Vec<(Vec<u8>, Vec<u8>)>>,
    cmp: Arc<dyn Comparator>,
    /// `entries.len()` means invalid.
    pos: usize,
}

impl VecIterator {
    /// Wraps sorted entries.
    pub fn new(entries: Arc<Vec<(Vec<u8>, Vec<u8>)>>, cmp: Arc<dyn Comparator>) -> Self {
        let pos = entries.len();
        VecIterator { entries, cmp, pos }
    }
}

impl InternalIterator for VecIterator {
    fn valid(&self) -> bool {
        self.pos < self.entries.len()
    }

    fn seek_to_first(&mut self) {
        self.pos = 0;
    }

    fn seek_to_last(&mut self) {
        self.pos = self.entries.len().saturating_sub(1);
        if self.entries.is_empty() {
            self.pos = 0;
        }
    }

    fn seek(&mut self, target: &[u8]) {
        self.pos = self
            .entries
            .partition_point(|(k, _)| self.cmp.compare(k, target) == Ordering::Less);
    }

    fn next(&mut self) {
        debug_assert!(self.valid());
        self.pos += 1;
    }

    fn prev(&mut self) {
        debug_assert!(self.valid());
        if self.pos == 0 {
            self.pos = self.entries.len();
        } else {
            self.pos -= 1;
        }
    }

    fn key(&self) -> &[u8] {
        &self.entries[self.pos].0
    }

    fn value(&self) -> &[u8] {
        &self.entries[self.pos].1
    }

    fn status(&self) -> Result<()> {
        Ok(())
    }
}

/// Merges N child iterators into one ordered stream.
///
/// Selection is a linear scan over children (LevelDB does the same for
/// its typical small N); ties between children are broken by child index,
/// so earlier (newer) sources win — the property compaction's
/// deduplication relies on.
pub struct MergingIterator {
    children: Vec<Box<dyn InternalIterator>>,
    cmp: Arc<dyn Comparator>,
    /// Index of the child currently holding the smallest key.
    current: Option<usize>,
    /// Direction of the last movement (affects how re-seeks happen).
    forward: bool,
}

impl MergingIterator {
    /// Creates a merging iterator over `children`.
    pub fn new(children: Vec<Box<dyn InternalIterator>>, cmp: Arc<dyn Comparator>) -> Self {
        MergingIterator {
            children,
            cmp,
            current: None,
            forward: true,
        }
    }

    fn find_smallest(&mut self) {
        let mut smallest: Option<usize> = None;
        for (i, child) in self.children.iter().enumerate() {
            if !child.valid() {
                continue;
            }
            match smallest {
                None => smallest = Some(i),
                Some(s) => {
                    if self.cmp.compare(child.key(), self.children[s].key()) == Ordering::Less {
                        smallest = Some(i);
                    }
                }
            }
        }
        self.current = smallest;
    }

    fn find_largest(&mut self) {
        let mut largest: Option<usize> = None;
        for (i, child) in self.children.iter().enumerate() {
            if !child.valid() {
                continue;
            }
            match largest {
                None => largest = Some(i),
                Some(l) => {
                    if self.cmp.compare(child.key(), self.children[l].key()) != Ordering::Less {
                        largest = Some(i);
                    }
                }
            }
        }
        self.current = largest;
    }
}

impl InternalIterator for MergingIterator {
    fn valid(&self) -> bool {
        self.current.is_some()
    }

    fn seek_to_first(&mut self) {
        for child in &mut self.children {
            child.seek_to_first();
        }
        self.forward = true;
        self.find_smallest();
    }

    fn seek_to_last(&mut self) {
        for child in &mut self.children {
            child.seek_to_last();
        }
        self.forward = false;
        self.find_largest();
    }

    fn seek(&mut self, target: &[u8]) {
        for child in &mut self.children {
            child.seek(target);
        }
        self.forward = true;
        self.find_smallest();
    }

    fn next(&mut self) {
        // PANIC-OK: InternalIterator contract — next() only when valid().
        let cur = self.current.expect("next on invalid merging iterator");
        if !self.forward {
            // Children other than `cur` sit at entries <= key(); move them
            // all to the first entry after the current key.
            let key = self.children[cur].key().to_vec();
            for (i, child) in self.children.iter_mut().enumerate() {
                if i == cur {
                    continue;
                }
                child.seek(&key);
                if child.valid() && self.cmp.compare(child.key(), &key) == Ordering::Equal {
                    child.next();
                }
            }
            self.forward = true;
        }
        // PANIC-OK: current was Some at entry and is untouched above.
        self.children[self.current.unwrap()].next();
        self.find_smallest();
    }

    fn prev(&mut self) {
        // PANIC-OK: InternalIterator contract — prev() only when valid().
        let cur = self.current.expect("prev on invalid merging iterator");
        if self.forward {
            let key = self.children[cur].key().to_vec();
            for (i, child) in self.children.iter_mut().enumerate() {
                if i == cur {
                    continue;
                }
                child.seek(&key);
                if child.valid() {
                    child.prev();
                } else {
                    child.seek_to_last();
                }
            }
            self.forward = false;
        }
        // PANIC-OK: current was Some at entry and is untouched above.
        self.children[self.current.unwrap()].prev();
        self.find_largest();
    }

    fn key(&self) -> &[u8] {
        // PANIC-OK: InternalIterator contract — key() only when valid().
        self.children[self.current.expect("key on invalid iterator")].key()
    }

    fn value(&self) -> &[u8] {
        // PANIC-OK: InternalIterator contract — value() only when valid().
        self.children[self.current.expect("value on invalid iterator")].value()
    }

    fn status(&self) -> Result<()> {
        for child in &self.children {
            child.status()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::comparator::BytewiseComparator;

    fn vec_iter(pairs: &[(&str, &str)]) -> Box<dyn InternalIterator> {
        let entries: Vec<(Vec<u8>, Vec<u8>)> = pairs
            .iter()
            .map(|(k, v)| (k.as_bytes().to_vec(), v.as_bytes().to_vec()))
            .collect();
        Box::new(VecIterator::new(
            Arc::new(entries),
            Arc::new(BytewiseComparator),
        ))
    }

    fn collect_forward(it: &mut dyn InternalIterator) -> Vec<(String, String)> {
        let mut out = Vec::new();
        it.seek_to_first();
        while it.valid() {
            out.push((
                String::from_utf8(it.key().to_vec()).unwrap(),
                String::from_utf8(it.value().to_vec()).unwrap(),
            ));
            it.next();
        }
        out
    }

    #[test]
    fn merge_interleaved_sources() {
        let mut m = MergingIterator::new(
            vec![
                vec_iter(&[("a", "1"), ("d", "4"), ("g", "7")]),
                vec_iter(&[("b", "2"), ("e", "5")]),
                vec_iter(&[("c", "3"), ("f", "6"), ("h", "8")]),
            ],
            Arc::new(BytewiseComparator),
        );
        let got = collect_forward(&mut m);
        let keys: Vec<&str> = got.iter().map(|(k, _)| k.as_str()).collect();
        assert_eq!(keys, ["a", "b", "c", "d", "e", "f", "g", "h"]);
    }

    #[test]
    fn ties_prefer_earlier_child() {
        let mut m = MergingIterator::new(
            vec![vec_iter(&[("k", "new")]), vec_iter(&[("k", "old")])],
            Arc::new(BytewiseComparator),
        );
        m.seek_to_first();
        assert_eq!(m.value(), b"new");
        m.next();
        assert!(m.valid());
        assert_eq!(m.value(), b"old");
    }

    #[test]
    fn seek_lands_on_lower_bound() {
        let mut m = MergingIterator::new(
            vec![vec_iter(&[("a", "1"), ("e", "5")]), vec_iter(&[("c", "3")])],
            Arc::new(BytewiseComparator),
        );
        m.seek(b"b");
        assert!(m.valid());
        assert_eq!(m.key(), b"c");
        m.seek(b"e");
        assert_eq!(m.key(), b"e");
        m.seek(b"z");
        assert!(!m.valid());
    }

    #[test]
    fn empty_children_are_fine() {
        let mut m = MergingIterator::new(
            vec![vec_iter(&[]), vec_iter(&[("x", "1")]), vec_iter(&[])],
            Arc::new(BytewiseComparator),
        );
        let got = collect_forward(&mut m);
        assert_eq!(got, [("x".to_string(), "1".to_string())]);
        let mut all_empty = MergingIterator::new(vec![vec_iter(&[])], Arc::new(BytewiseComparator));
        all_empty.seek_to_first();
        assert!(!all_empty.valid());
    }

    #[test]
    fn backward_scan_and_direction_switch() {
        let mut m = MergingIterator::new(
            vec![
                vec_iter(&[("a", "1"), ("c", "3")]),
                vec_iter(&[("b", "2"), ("d", "4")]),
            ],
            Arc::new(BytewiseComparator),
        );
        m.seek_to_last();
        assert_eq!(m.key(), b"d");
        m.prev();
        assert_eq!(m.key(), b"c");
        m.prev();
        assert_eq!(m.key(), b"b");
        // Switch direction: next should return to "c".
        m.next();
        assert_eq!(m.key(), b"c");
        m.next();
        assert_eq!(m.key(), b"d");
        m.next();
        assert!(!m.valid());
    }
}
