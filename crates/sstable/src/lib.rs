//! LevelDB-compatible SSTable format.
//!
//! The paper's FPGA compaction engine is integrated with LevelDB "without
//! modifications on the original storage format" (§I), so this crate
//! implements that format faithfully:
//!
//! * **Data blocks** (`block`, `block_builder`) — prefix-compressed
//!   key/value entries with restart points every 16 entries, followed by
//!   the restart array and its count.
//! * **Block trailer** (`format`) — a one-byte compression tag (none /
//!   Snappy) plus a masked CRC32C over the block contents and tag.
//! * **Index block** — a data block whose keys are separators between
//!   adjacent data blocks and whose values are [`format::BlockHandle`]s
//!   (offset + size varints). This is the block the paper's *Index Block
//!   Decoder* parses.
//! * **Filter block** (`filter_block`, `bloom`) — LevelDB's bloom-filter
//!   metablock.
//! * **Footer** — metaindex handle + index handle, padded to 48 bytes,
//!   ending in the 8-byte LevelDB magic number.
//! * **Internal keys** (`ikey`) — user key + the 8-byte trailer packing a
//!   56-bit sequence number and a value type. The trailer is the paper's
//!   "mark fields": with 16-byte user keys, `L_key = 16 + 8 = 24`.
//!
//! [`table_builder::TableBuilder`] writes tables, [`table::Table`] reads
//! them, and [`iterator`] provides the
//! iterator trait plus the k-way merging iterator compaction is built on.

pub mod block;
pub mod block_builder;
pub mod bloom;
pub mod cache;
pub mod coding;
pub mod comparator;
pub mod crc32c;
pub mod env;
pub mod filter_block;
pub mod format;
pub mod ikey;
pub mod iterator;
pub mod losertree;
pub mod table;
pub mod table_builder;

pub use block::Block;
pub use block_builder::BlockBuilder;
pub use cache::BlockCache;
pub use comparator::{BytewiseComparator, Comparator, InternalKeyComparator};
pub use env::{
    FaultEnv, FaultKind, MemEnv, PowerCutReport, RandomAccessFile, StdEnv, StorageEnv, WritableFile,
};
pub use format::{BlockHandle, CompressionType, Footer};
pub use ikey::{
    append_internal_key, parse_internal_key, InternalKey, LookupKey, ParsedInternalKey,
    SequenceNumber, ValueType, MAX_SEQUENCE_NUMBER,
};
pub use iterator::{InternalIterator, MergingIterator};
pub use losertree::LoserTree;
pub use table::Table;
pub use table_builder::TableBuilder;

/// Errors produced while reading or writing tables.
#[derive(Debug)]
pub enum Error {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// Structural corruption (bad magic, CRC mismatch, truncated block...).
    Corruption(String),
    /// Caller misuse (keys out of order, builder reused after finish...).
    InvalidArgument(String),
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Io(e) => write!(f, "io error: {e}"),
            Error::Corruption(m) => write!(f, "corruption: {m}"),
            Error::InvalidArgument(m) => write!(f, "invalid argument: {m}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<snap_codec::Error> for Error {
    fn from(e: snap_codec::Error) -> Self {
        Error::Corruption(format!("snappy: {e}"))
    }
}

/// Result alias for table operations.
pub type Result<T> = std::result::Result<T, Error>;

/// Helper for constructing corruption errors.
pub(crate) fn corruption(msg: impl Into<String>) -> Error {
    Error::Corruption(msg.into())
}
