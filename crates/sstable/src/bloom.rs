//! LevelDB's bloom filter policy (double hashing over a 32-bit base hash).

/// Bloom filter builder/matcher compatible with LevelDB's
/// `NewBloomFilterPolicy`.
#[derive(Debug, Clone, Copy)]
pub struct BloomFilterPolicy {
    bits_per_key: usize,
    /// Number of probes, derived as `bits_per_key * ln2` and clamped.
    k: usize,
}

impl BloomFilterPolicy {
    /// Creates a policy; LevelDB's recommended default is 10 bits per key
    /// (~1% false positive rate).
    pub fn new(bits_per_key: usize) -> Self {
        let k = ((bits_per_key as f64) * 0.69) as usize; // 0.69 ≈ ln 2
        BloomFilterPolicy {
            bits_per_key,
            k: k.clamp(1, 30),
        }
    }

    /// Name recorded in the filter metablock key.
    pub fn name(&self) -> &'static str {
        "leveldb.BuiltinBloomFilter2"
    }

    /// Appends a filter built from `keys` to `dst`.
    pub fn create_filter(&self, keys: &[&[u8]], dst: &mut Vec<u8>) {
        let mut bits = keys.len() * self.bits_per_key;
        // Small n yields high false positive rates; floor at 64 bits.
        if bits < 64 {
            bits = 64;
        }
        let bytes = bits.div_ceil(8);
        let bits = bytes * 8;

        let init = dst.len();
        dst.resize(init + bytes, 0);
        dst.push(self.k as u8);
        let array = &mut dst[init..init + bytes];
        for key in keys {
            let mut h = bloom_hash(key);
            let delta = h.rotate_right(17);
            for _ in 0..self.k {
                let bitpos = (h as usize) % bits;
                array[bitpos / 8] |= 1 << (bitpos % 8);
                h = h.wrapping_add(delta);
            }
        }
    }

    /// True if `key` may be in the set the filter was built from.
    pub fn key_may_match(&self, key: &[u8], filter: &[u8]) -> bool {
        if filter.len() < 2 {
            return false;
        }
        let bits = (filter.len() - 1) * 8;
        let k = filter[filter.len() - 1] as usize;
        if k > 30 {
            // Reserved for future encodings: err on the safe side.
            return true;
        }
        let array = &filter[..filter.len() - 1];
        let mut h = bloom_hash(key);
        let delta = h.rotate_right(17);
        for _ in 0..k {
            let bitpos = (h as usize) % bits;
            if array[bitpos / 8] & (1 << (bitpos % 8)) == 0 {
                return false;
            }
            h = h.wrapping_add(delta);
        }
        true
    }
}

impl Default for BloomFilterPolicy {
    fn default() -> Self {
        BloomFilterPolicy::new(10)
    }
}

/// LevelDB's `Hash(data, seed=0xbc9f1d34)` — a Murmur-like mix.
pub fn bloom_hash(data: &[u8]) -> u32 {
    hash(data, 0xbc9f_1d34)
}

/// LevelDB `util/hash.cc`.
pub fn hash(data: &[u8], seed: u32) -> u32 {
    const M: u32 = 0xc6a4_a793;
    const R: u32 = 24;
    let mut h = seed ^ (M.wrapping_mul(data.len() as u32));
    let mut chunks = data.chunks_exact(4);
    for c in chunks.by_ref() {
        // PANIC-OK: chunks_exact(4) yields exactly 4-byte slices.
        let w = u32::from_le_bytes(c.try_into().unwrap());
        h = h.wrapping_add(w);
        h = h.wrapping_mul(M);
        h ^= h >> 16;
    }
    let rest = chunks.remainder();
    if rest.len() >= 3 {
        h = h.wrapping_add(u32::from(rest[2]) << 16);
    }
    if rest.len() >= 2 {
        h = h.wrapping_add(u32::from(rest[1]) << 8);
    }
    if !rest.is_empty() {
        h = h.wrapping_add(u32::from(rest[0]));
        h = h.wrapping_mul(M);
        h ^= h >> R;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    fn filter_for(keys: &[&[u8]]) -> Vec<u8> {
        let mut f = Vec::new();
        BloomFilterPolicy::new(10).create_filter(keys, &mut f);
        f
    }

    #[test]
    fn empty_filter_matches_nothing() {
        let f = filter_for(&[]);
        let p = BloomFilterPolicy::new(10);
        assert!(!p.key_may_match(b"hello", &f));
        assert!(!p.key_may_match(b"", &f));
    }

    #[test]
    fn inserted_keys_always_match() {
        let keys: Vec<Vec<u8>> = (0..1000).map(|i| format!("key-{i}").into_bytes()).collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let f = filter_for(&refs);
        let p = BloomFilterPolicy::new(10);
        for k in &refs {
            assert!(p.key_may_match(k, &f), "false negative for {k:?}");
        }
    }

    #[test]
    fn false_positive_rate_is_low() {
        let keys: Vec<Vec<u8>> = (0..10_000)
            .map(|i| format!("in-{i}").into_bytes())
            .collect();
        let refs: Vec<&[u8]> = keys.iter().map(|k| k.as_slice()).collect();
        let f = filter_for(&refs);
        let p = BloomFilterPolicy::new(10);
        let mut fp = 0usize;
        let trials = 10_000;
        for i in 0..trials {
            if p.key_may_match(format!("out-{i}").as_bytes(), &f) {
                fp += 1;
            }
        }
        let rate = fp as f64 / trials as f64;
        assert!(rate < 0.03, "false positive rate too high: {rate}");
    }

    #[test]
    fn tiny_key_sets_get_minimum_size() {
        let f = filter_for(&[b"one"]);
        // 64-bit floor + k byte.
        assert_eq!(f.len(), 9);
        assert!(BloomFilterPolicy::new(10).key_may_match(b"one", &f));
    }

    #[test]
    fn hash_reference_values_are_stable() {
        // Fixed outputs so accidental algorithm changes are caught.
        assert_eq!(hash(b"", 0xbc9f_1d34), bloom_hash(b""));
        assert_ne!(bloom_hash(b"a"), bloom_hash(b"b"));
        // 1..4 byte tails exercise the remainder branches.
        for len in 0..9 {
            let data = vec![0x5au8; len];
            let _ = bloom_hash(&data);
        }
    }
}
