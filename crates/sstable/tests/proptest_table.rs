//! Property-based tests of the table format: arbitrary entry sets round-
//! trip through build → open → iterate/seek, under every compression and
//! block-size choice.

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::Arc;

use proptest::prelude::*;
use sstable::comparator::BytewiseComparator;
use sstable::env::{MemEnv, StorageEnv};
use sstable::format::CompressionType;
use sstable::iterator::InternalIterator;
use sstable::table::{Table, TableReadOptions};
use sstable::table_builder::{TableBuilder, TableBuilderOptions};

fn entries_strategy() -> impl Strategy<Value = BTreeMap<Vec<u8>, Vec<u8>>> {
    proptest::collection::btree_map(
        proptest::collection::vec(any::<u8>(), 1..40),
        proptest::collection::vec(any::<u8>(), 0..200),
        1..120,
    )
}

fn build(
    env: &MemEnv,
    entries: &BTreeMap<Vec<u8>, Vec<u8>>,
    block_size: usize,
    compression: CompressionType,
) -> Arc<Table> {
    let opts = TableBuilderOptions {
        block_size,
        compression,
        comparator: Arc::new(BytewiseComparator),
        ..Default::default()
    };
    let file = env.create_writable(Path::new("/t")).unwrap();
    let mut b = TableBuilder::new(opts, file);
    for (k, v) in entries {
        b.add(k, v).unwrap();
    }
    let size = b.finish().unwrap();
    let file = env.open_random_access(Path::new("/t")).unwrap();
    Table::open(file, size, TableReadOptions::default()).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every entry set scans back exactly, regardless of block size and
    /// compression.
    #[test]
    fn scan_roundtrip(
        entries in entries_strategy(),
        block_size in prop::sample::select(vec![64usize, 256, 1024, 4096]),
        snappy in any::<bool>(),
    ) {
        let env = MemEnv::new();
        let compression =
            if snappy { CompressionType::Snappy } else { CompressionType::None };
        let table = build(&env, &entries, block_size, compression);
        let mut it = table.iter();
        it.seek_to_first();
        let mut got = BTreeMap::new();
        while it.valid() {
            got.insert(it.key().to_vec(), it.value().to_vec());
            it.next();
        }
        it.status().unwrap();
        prop_assert_eq!(got, entries);
    }

    /// `seek(k)` always lands on the smallest key >= k.
    #[test]
    fn seek_is_lower_bound(
        entries in entries_strategy(),
        probes in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..40), 1..20),
    ) {
        let env = MemEnv::new();
        let table = build(&env, &entries, 256, CompressionType::Snappy);
        let mut it = table.iter();
        for probe in &probes {
            it.seek(probe);
            let expected = entries.range(probe.clone()..).next();
            match expected {
                Some((k, v)) => {
                    prop_assert!(it.valid(), "expected {:?}", k);
                    prop_assert_eq!(it.key(), &k[..]);
                    prop_assert_eq!(it.value(), &v[..]);
                }
                None => prop_assert!(!it.valid()),
            }
        }
    }

    /// Backward iteration yields exactly the reverse of forward.
    #[test]
    fn backward_matches_forward(entries in entries_strategy()) {
        let env = MemEnv::new();
        let table = build(&env, &entries, 128, CompressionType::None);
        let forward: Vec<Vec<u8>> = entries.keys().cloned().collect();
        let mut it = table.iter();
        it.seek_to_last();
        let mut backward = Vec::new();
        while it.valid() {
            backward.push(it.key().to_vec());
            it.prev();
        }
        backward.reverse();
        prop_assert_eq!(backward, forward);
    }

    /// Corrupting any single byte of the file never panics the reader:
    /// open/read either succeeds (unverified regions like padding) or
    /// returns an error.
    #[test]
    fn corruption_never_panics(
        entries in entries_strategy(),
        flip in any::<prop::sample::Index>(),
        xor in 1u8..=255,
    ) {
        let env = MemEnv::new();
        let _ = build(&env, &entries, 256, CompressionType::Snappy);
        let mut bytes = env
            .open_random_access(Path::new("/t")).unwrap()
            .read_all().unwrap();
        let i = flip.index(bytes.len());
        bytes[i] ^= xor;
        let mut w = env.create_writable(Path::new("/corrupt")).unwrap();
        w.append(&bytes).unwrap();
        drop(w);
        let file = env.open_random_access(Path::new("/corrupt")).unwrap();
        if let Ok(table) = Table::open(file, bytes.len() as u64, TableReadOptions::default()) {
            let mut it = table.iter();
            it.seek_to_first();
            let mut count = 0;
            while it.valid() && count < 10_000 {
                count += 1;
                it.next();
            }
            // status() may error; it must not panic.
            let _ = it.status();
            for (k, _) in entries.iter().take(5) {
                let _ = table.get(k);
            }
        }
    }
}
