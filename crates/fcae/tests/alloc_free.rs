//! Counting-allocator proof that the steady-state merge loop —
//! decode → compare → validity-check → advance — performs **zero** heap
//! allocations per key-value pair, for both raw and Snappy-compressed
//! inputs. Block-boundary work (index entries, per-table setup) is
//! deliberately amortized outside this loop and is covered by the
//! allocs/kv figure in `BENCH_PR2.json`.
//!
//! Single `#[test]` in this binary: the global counter sees every thread,
//! so parallel tests would pollute the measurement window.

use std::alloc::{GlobalAlloc, Layout, System};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fcae::comparer::{Comparer, DropFilter};
use fcae::decoder::{InputDecoder, MergeSource};
use fcae::memory::build_input_image;
use lsm::compaction::CompactionInput;
use sstable::comparator::InternalKeyComparator;
use sstable::env::{MemEnv, StorageEnv};
use sstable::format::CompressionType;
use sstable::ikey::{InternalKey, ValueType};
use sstable::table::{Table, TableReadOptions};
use sstable::table_builder::{TableBuilder, TableBuilderOptions};

struct CountingAllocator {
    allocs: AtomicU64,
}

static ALLOCS: CountingAllocator = CountingAllocator {
    allocs: AtomicU64::new(0),
};

#[global_allocator]
static GLOBAL: &CountingAllocator = &ALLOCS;

// SAFETY: pure pass-through to `System`, which upholds the `GlobalAlloc`
// contract; the only addition is a relaxed atomic counter bump, which
// allocates nothing and cannot reenter the allocator.
unsafe impl GlobalAlloc for &'static CountingAllocator {
    // SAFETY: forwards `layout` unchanged to `System.alloc`; caller
    // obligations are exactly the system allocator's.
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    // SAFETY: `ptr`/`layout` come from a matching `alloc`/`realloc` on
    // this same wrapper, which always returns `System` memory.
    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
    }

    // SAFETY: same pass-through argument as `dealloc` — `ptr` was
    // produced by `System` via this wrapper.
    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        self.allocs.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

const W_IN: u32 = 64;
const ENTRIES_PER_TABLE: usize = 1200;

fn build_table(
    env: &MemEnv,
    path: &str,
    stride_offset: u64,
    compression: CompressionType,
) -> Arc<Table> {
    let opts = TableBuilderOptions {
        compression,
        comparator: Arc::new(InternalKeyComparator::default()),
        // 8 KiB blocks: several block fetches per table, so the measured
        // window crosses block boundaries on the decode side too.
        block_size: 8 << 10,
        ..Default::default()
    };
    let f = env.create_writable(Path::new(path)).unwrap();
    let mut b = TableBuilder::new(opts, f);
    for i in 0..ENTRIES_PER_TABLE as u64 {
        // Fixed-width keys; streams interleave and share user keys so the
        // drop filter's shadowing path runs inside the window.
        let key = InternalKey::new(
            format!("user-key-{:08}", i * 2 + (stride_offset % 2)).as_bytes(),
            1000 + stride_offset,
            if i % 11 == 0 {
                ValueType::Deletion
            } else {
                ValueType::Value
            },
        );
        b.add(key.encoded(), format!("value-{i:0>40}").as_bytes())
            .unwrap();
    }
    let size = b.finish().unwrap();
    let file = env.open_random_access(Path::new(path)).unwrap();
    let read_opts = TableReadOptions {
        comparator: Arc::new(InternalKeyComparator::default()),
        ..Default::default()
    };
    Table::open(file, size, read_opts).unwrap()
}

/// Runs the merge loop over four decoders, measuring allocations in a
/// steady-state window after a warm-up prefix. Returns (kvs in window,
/// allocations in window).
fn measure(compression: CompressionType) -> (u64, u64) {
    let env = MemEnv::new();
    let inputs: Vec<CompactionInput> = (0..4u64)
        .map(|n| CompactionInput {
            tables: vec![build_table(&env, &format!("/t{n}"), n, compression)],
        })
        .collect();
    let images: Vec<_> = inputs
        .iter()
        .map(|i| build_input_image(i, W_IN).unwrap())
        .collect();

    let mut decoders: Vec<InputDecoder<'_>> = images
        .iter()
        .map(|im| InputDecoder::new(im, W_IN))
        .collect();
    for d in &mut decoders {
        d.advance().unwrap();
    }
    let mut comparer = Comparer::new(DropFilter::new(u64::MAX, true));

    // Warm-up: grow the cursor key buffers, the Snappy scratch buffer and
    // the drop filter's last-user-key buffer, and build the loser tree.
    // Run until every decoder has fetched at least two data blocks: the
    // decompression buffer grows geometrically, so after the second fetch
    // its capacity covers every subsequent same-sized block.
    let mut checksum = 0u64;
    while decoders.iter().any(|d| d.blocks_fetched() < 2) {
        let sel = comparer.select(&decoders).expect("warm-up exhausted input");
        checksum = checksum
            .wrapping_add(decoders[sel.input_no].key().len() as u64)
            .wrapping_add(decoders[sel.input_no].value().len() as u64);
        decoders[sel.input_no].advance().unwrap();
    }

    // Steady state: every select/read/advance must be allocation-free.
    let before = ALLOCS.allocs.load(Ordering::SeqCst);
    let mut kvs = 0u64;
    while let Some(sel) = comparer.select(&decoders) {
        let d = &mut decoders[sel.input_no];
        checksum = checksum
            .wrapping_add(d.key().len() as u64)
            .wrapping_add(d.value().len() as u64);
        d.advance().unwrap();
        kvs += 1;
    }
    let after = ALLOCS.allocs.load(Ordering::SeqCst);
    assert!(checksum > 0);
    (kvs, after - before)
}

#[test]
fn steady_state_merge_loop_is_allocation_free() {
    for compression in [CompressionType::None, CompressionType::Snappy] {
        let (kvs, allocs) = measure(compression);
        assert!(
            kvs > 2000,
            "window too small to be meaningful: {kvs} kvs ({compression:?})"
        );
        assert_eq!(
            allocs, 0,
            "steady-state merge loop allocated {allocs} times over {kvs} kvs ({compression:?})"
        );
    }
}
