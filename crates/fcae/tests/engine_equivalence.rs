//! The core correctness claim of the reproduction: the simulated FPGA
//! engine and the CPU engine produce *equivalent* compactions — the same
//! surviving entries in the same order, in files the standard reader can
//! open — and the engine integrates with the full store unchanged.

use std::path::Path;
use std::sync::Arc;

use fcae::{FcaeConfig, FcaeEngine};
use lsm::compaction::{
    CompactionEngine, CompactionInput, CompactionRequest, CpuCompactionEngine, OutputFileFactory,
};
use lsm::{Db, Options};
use sstable::comparator::InternalKeyComparator;
use sstable::env::{MemEnv, StorageEnv, WritableFile};
use sstable::ikey::{parse_internal_key, InternalKey, ValueType};
use sstable::iterator::InternalIterator;
use sstable::table::{Table, TableReadOptions};
use sstable::table_builder::{TableBuilder, TableBuilderOptions};

fn builder_options() -> TableBuilderOptions {
    TableBuilderOptions {
        comparator: Arc::new(InternalKeyComparator::default()),
        internal_key_filter: true,
        block_size: 1024,
        ..Default::default()
    }
}

fn read_options() -> TableReadOptions {
    TableReadOptions {
        comparator: Arc::new(InternalKeyComparator::default()),
        internal_key_filter: true,
        ..Default::default()
    }
}

fn build_table(
    env: &MemEnv,
    path: &str,
    entries: &[(String, u64, ValueType, Vec<u8>)],
) -> Arc<Table> {
    let f = env.create_writable(Path::new(path)).unwrap();
    let mut b = TableBuilder::new(builder_options(), f);
    for (k, seq, t, v) in entries {
        let key = InternalKey::new(k.as_bytes(), *seq, *t);
        b.add(key.encoded(), v).unwrap();
    }
    let size = b.finish().unwrap();
    let file = env.open_random_access(Path::new(path)).unwrap();
    Table::open(file, size, read_options()).unwrap()
}

/// Allocates numbered output files in a MemEnv.
struct MemFactory {
    env: MemEnv,
    prefix: &'static str,
    counter: std::sync::atomic::AtomicU64,
}

impl OutputFileFactory for MemFactory {
    fn new_output(&self) -> lsm::Result<(u64, Box<dyn WritableFile>)> {
        let n = self
            .counter
            .fetch_add(1, std::sync::atomic::Ordering::SeqCst)
            + 1;
        let path = format!("/{}-{n}.ldb", self.prefix);
        let file = self.env.create_writable(Path::new(&path))?;
        Ok((n, file))
    }
}

/// Reads every entry of every output table back through the standard
/// reader, in order.
fn read_all_outputs(
    env: &MemEnv,
    prefix: &str,
    outputs: &[lsm::compaction::OutputTableMeta],
) -> Vec<(Vec<u8>, u64, ValueType, Vec<u8>)> {
    let mut all = Vec::new();
    for meta in outputs {
        let path = format!("/{}-{}.ldb", prefix, meta.number);
        let file = env.open_random_access(Path::new(&path)).unwrap();
        let table = Table::open(file, meta.file_size, read_options()).unwrap();
        let mut it = table.iter();
        it.seek_to_first();
        let mut count = 0;
        while it.valid() {
            let p = parse_internal_key(it.key()).unwrap();
            all.push((
                p.user_key.to_vec(),
                p.sequence,
                p.value_type,
                it.value().to_vec(),
            ));
            count += 1;
            it.next();
        }
        it.status().unwrap();
        assert_eq!(count, meta.entries, "entry count mismatch in {path}");
    }
    all
}

/// A three-input workload with overlapping ranges, updates and deletes.
fn overlapping_inputs(env: &MemEnv) -> Vec<CompactionInput> {
    // Input 0 (newest): updates for every 3rd key and deletes for every
    // 10th, sequences 3000+.
    let mut newest = Vec::new();
    for i in (0..900u32).step_by(3) {
        let t = if i % 10 == 0 {
            ValueType::Deletion
        } else {
            ValueType::Value
        };
        newest.push((
            format!("key{i:05}"),
            3000 + u64::from(i),
            t,
            format!("new-{i}").into_bytes(),
        ));
    }
    // Input 1 (middle): even keys, sequences 2000+.
    let mut middle = Vec::new();
    for i in (0..900u32).step_by(2) {
        middle.push((
            format!("key{i:05}"),
            2000 + u64::from(i),
            ValueType::Value,
            format!("mid-{i}").into_bytes(),
        ));
    }
    // Input 2 (oldest): all keys, two tables, sequences 1000+.
    let mut oldest_a = Vec::new();
    let mut oldest_b = Vec::new();
    for i in 0..900u32 {
        let e = (
            format!("key{i:05}"),
            1000 + u64::from(i),
            ValueType::Value,
            vec![b'o'; 64],
        );
        if i < 450 {
            oldest_a.push(e);
        } else {
            oldest_b.push(e);
        }
    }
    vec![
        CompactionInput {
            tables: vec![build_table(env, "/in0", &newest)],
        },
        CompactionInput {
            tables: vec![build_table(env, "/in1", &middle)],
        },
        CompactionInput {
            tables: vec![
                build_table(env, "/in2a", &oldest_a),
                build_table(env, "/in2b", &oldest_b),
            ],
        },
    ]
}

fn request(inputs: Vec<CompactionInput>, bottommost: bool) -> CompactionRequest {
    CompactionRequest {
        level: 0,
        inputs,
        smallest_snapshot: 1 << 40,
        bottommost,
        builder_options: builder_options(),
        max_output_file_size: 64 << 10,
    }
}

#[test]
fn fcae_and_cpu_produce_identical_entry_streams() {
    for bottommost in [false, true] {
        let env = MemEnv::new();
        let inputs_cpu = overlapping_inputs(&env);
        let inputs_fcae = overlapping_inputs(&env);

        let cpu_factory = MemFactory {
            env: env.clone(),
            prefix: "cpu",
            counter: Default::default(),
        };
        let cpu_out = CpuCompactionEngine
            .compact(&request(inputs_cpu, bottommost), &cpu_factory)
            .unwrap();

        let engine = FcaeEngine::new(FcaeConfig::nine_input());
        let fcae_factory = MemFactory {
            env: env.clone(),
            prefix: "fcae",
            counter: Default::default(),
        };
        let fcae_out = engine
            .compact(&request(inputs_fcae, bottommost), &fcae_factory)
            .unwrap();

        let cpu_entries = read_all_outputs(&env, "cpu", &cpu_out.outputs);
        let fcae_entries = read_all_outputs(&env, "fcae", &fcae_out.outputs);
        assert_eq!(
            cpu_entries.len(),
            fcae_entries.len(),
            "bottommost={bottommost}"
        );
        assert_eq!(cpu_entries, fcae_entries, "bottommost={bottommost}");
        assert_eq!(cpu_out.entries_dropped, fcae_out.entries_dropped);
        assert_eq!(cpu_out.entries_written, fcae_out.entries_written);

        // The drop rules did real work.
        assert!(cpu_out.entries_dropped > 0);
        // FCAE reports device timing.
        assert!(fcae_out.modeled_kernel_time.unwrap().as_nanos() > 0);
        assert!(fcae_out.modeled_transfer_time.unwrap().as_nanos() > 0);
    }
}

#[test]
fn fcae_outputs_are_seekable_standard_tables() {
    let env = MemEnv::new();
    let inputs = overlapping_inputs(&env);
    let engine = FcaeEngine::new(FcaeConfig::nine_input());
    let factory = MemFactory {
        env: env.clone(),
        prefix: "out",
        counter: Default::default(),
    };
    let outcome = engine.compact(&request(inputs, true), &factory).unwrap();
    assert!(!outcome.outputs.is_empty());

    for meta in &outcome.outputs {
        let path = format!("/out-{}.ldb", meta.number);
        let file = env.open_random_access(Path::new(&path)).unwrap();
        let table = Table::open(file, meta.file_size, read_options()).unwrap();
        // Seek to the recorded smallest and largest keys.
        let mut it = table.iter();
        it.seek(meta.smallest.encoded());
        assert!(it.valid());
        assert_eq!(it.key(), meta.smallest.encoded());
        it.seek(meta.largest.encoded());
        assert!(it.valid());
        assert_eq!(it.key(), meta.largest.encoded());
        // Point lookups by internal key work.
        let got = table.get(meta.smallest.encoded()).unwrap();
        assert!(got.is_some());
    }
    // Output tables respect the size limit (with one block of slack).
    for meta in &outcome.outputs {
        assert!(meta.file_size < (64 << 10) + 8192, "{}", meta.file_size);
    }
}

#[test]
fn kernel_report_speed_behaviour_matches_paper_trends() {
    // Compaction speed must grow with value length (Fig. 9's driver) and
    // with V (Table V columns).
    let env = MemEnv::new();
    let mut speeds_by_value = Vec::new();
    // Incompressible values: the paper's speed metric divides by stored
    // (compressed) input bytes, so compressible filler would skew it.
    fn noise(seed: u64, len: usize) -> Vec<u8> {
        let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        (0..len)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x as u8
            })
            .collect()
    }
    for (tag, value_len) in [("a", 64usize), ("b", 512), ("c", 2048)] {
        let mk = |path: &str, base: u64| {
            let entries: Vec<_> = (0..600u32)
                .map(|i| {
                    (
                        format!("key{i:05}"),
                        base + u64::from(i),
                        ValueType::Value,
                        noise(base + u64::from(i), value_len),
                    )
                })
                .collect();
            build_table(&env, path, &entries)
        };
        let inputs = vec![
            CompactionInput {
                tables: vec![mk(&format!("/v{tag}0"), 2000)],
            },
            CompactionInput {
                tables: vec![mk(&format!("/v{tag}1"), 1000)],
            },
        ];
        let engine = FcaeEngine::new(FcaeConfig::two_input().with_v(16));
        let factory = MemFactory {
            env: env.clone(),
            prefix: "spd",
            counter: Default::default(),
        };
        engine.compact(&request(inputs, true), &factory).unwrap();
        let report = engine.last_report();
        assert!(report.compaction_speed_mb_s > 0.0);
        speeds_by_value.push(report.compaction_speed_mb_s);
    }
    assert!(
        speeds_by_value.windows(2).all(|w| w[0] < w[1]),
        "speed should grow with value length: {speeds_by_value:?}"
    );
}

#[test]
fn full_store_runs_on_the_fcae_engine() {
    let env = Arc::new(MemEnv::new());
    let options = Options {
        env: Arc::clone(&env) as Arc<dyn StorageEnv>,
        write_buffer_size: 64 << 10,
        max_file_size: 32 << 10,
        level1_max_bytes: 128 << 10,
        slowdown_sleep: false,
        ..Default::default()
    };
    let engine = Arc::new(FcaeEngine::new(FcaeConfig::nine_input()));
    let db = Db::open_with_engine("/db", options, engine).unwrap();
    assert_eq!(db.engine_name(), "fcae");

    // Mostly-sequential fill keeps L0 overlap narrow, so compactions fit
    // the engine's N and are offloaded rather than falling back.
    let value = vec![0x42u8; 400];
    for i in 0..3000u32 {
        db.put(format!("key{i:06}").as_bytes(), &value).unwrap();
    }
    for i in 0..1000u32 {
        db.put(format!("key{i:06}").as_bytes(), &value).unwrap();
    }
    db.delete(b"key000007").unwrap();
    db.flush().unwrap();
    db.wait_for_background_quiescence();

    let stats = db.stats();
    assert!(
        stats.engine_compactions > 0,
        "the FCAE engine should have executed compactions: {stats:?}"
    );
    assert!(stats.modeled_kernel_time.as_nanos() > 0);

    // Every key readable, deletion respected.
    assert_eq!(db.get(b"key000007").unwrap(), None);
    for i in (0..3000u32).step_by(37) {
        if i == 7 {
            continue;
        }
        assert_eq!(
            db.get(format!("key{i:06}").as_bytes()).unwrap().as_deref(),
            Some(&value[..]),
            "key{i:06}"
        );
    }
}

#[test]
fn l0_overload_falls_back_to_software() {
    // With N=2, an L0 compaction involving >2 inputs must be executed by
    // the software path (paper Fig. 6's SW Compaction branch).
    let env = Arc::new(MemEnv::new());
    let options = Options {
        env: Arc::clone(&env) as Arc<dyn StorageEnv>,
        write_buffer_size: 16 << 10,
        max_file_size: 16 << 10,
        slowdown_sleep: false,
        ..Default::default()
    };
    let engine = Arc::new(FcaeEngine::new(FcaeConfig::two_input()));
    let db = Db::open_with_engine("/db", options, engine).unwrap();
    // Same key range in every flush → wide L0 overlap → >2 inputs.
    for round in 0..8 {
        for i in 0..200u32 {
            db.put(
                format!("key{i:04}").as_bytes(),
                format!("r{round}").as_bytes(),
            )
            .unwrap();
        }
        db.flush().unwrap();
    }
    db.wait_for_background_quiescence();
    let stats = db.stats();
    assert!(
        stats.sw_fallback_compactions > 0,
        "expected software fallback for wide L0 compactions: {stats:?}"
    );
    // Data still correct.
    for i in (0..200u32).step_by(11) {
        assert_eq!(
            db.get(format!("key{i:04}").as_bytes()).unwrap(),
            Some(b"r7".to_vec())
        );
    }
}

/// The analytic steady-state speed (used by the system simulator) and the
/// functional kernel's measured speed must agree: they are two views of
/// the same cycle model.
#[test]
fn analytic_and_functional_speeds_agree() {
    use fcae::PipelineModel;

    for (v, value_len) in [(16u32, 128usize), (16, 512), (64, 2048), (8, 256)] {
        let cfg = FcaeConfig::two_input().with_v(v);
        // Functional: real merge, incompressible values.
        let env = MemEnv::new();
        fn noise(seed: u64, len: usize) -> Vec<u8> {
            let mut x = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
            (0..len)
                .map(|_| {
                    x ^= x << 13;
                    x ^= x >> 7;
                    x ^= x << 17;
                    x as u8
                })
                .collect()
        }
        let mk = |path: &str, base: u64| {
            // 16-byte user keys => 24-byte internal keys, matching the
            // analytic model's L_key.
            let entries: Vec<_> = (0..2_000u32)
                .map(|i| {
                    (
                        format!("{i:016}"),
                        base + u64::from(i),
                        ValueType::Value,
                        noise(base + u64::from(i), value_len),
                    )
                })
                .collect();
            build_table(&env, path, &entries)
        };
        let inputs = vec![
            CompactionInput {
                tables: vec![mk(&format!("/ca{v}{value_len}"), 10_000)],
            },
            CompactionInput {
                tables: vec![mk(&format!("/cb{v}{value_len}"), 1)],
            },
        ];
        let engine = FcaeEngine::new(cfg);
        let factory = MemFactory {
            env: env.clone(),
            prefix: "cons",
            counter: Default::default(),
        };
        engine.compact(&request(inputs, true), &factory).unwrap();
        let functional = engine.last_report().compaction_speed_mb_s;

        let analytic = PipelineModel::new(cfg).steady_state_speed_mb_s(24, value_len);
        let ratio = functional / analytic;
        assert!(
            (0.7..=1.4).contains(&ratio),
            "V={v} Lv={value_len}: functional {functional:.0} vs analytic {analytic:.0} (ratio {ratio:.2})"
        );
    }
}
