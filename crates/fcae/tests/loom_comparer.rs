//! Loom model: the loser-tree [`Comparer`] fed concurrently by
//! [`InputDecoder`] threads.
//!
//! Built and run only under `RUSTFLAGS="--cfg loom"`. Each input's
//! decoder runs on its own thread (the shape of the store's pipelined
//! CPU path and of the hardware's per-input decode units), streaming
//! decoded pairs through a bounded channel to the merge thread, which
//! runs the real `Comparer` over channel-backed [`MergeSource`]s. Across
//! all explored interleavings the concurrently-fed merge must emit the
//! byte-identical selection sequence of a single-threaded reference merge
//! over the same images — the engine's determinism claim, under
//! scheduling adversity.
#![cfg(loom)]

use std::path::Path;
use std::sync::Arc;

use fcae::comparer::{Comparer, DropFilter};
use fcae::decoder::{InputDecoder, MergeSource};
use fcae::memory::build_input_image;
use fcae::Result;
use loom::sync::mpsc::{sync_channel, Receiver, SyncSender};
use lsm::compaction::CompactionInput;
use sstable::env::{MemEnv, StorageEnv};
use sstable::ikey::{InternalKey, ValueType};
use sstable::table::{Table, TableReadOptions};
use sstable::table_builder::{TableBuilder, TableBuilderOptions};

const W_IN: u32 = 64;

fn build_table(env: &MemEnv, path: &str, stride: u64, offset: u64, n: u64) -> Arc<Table> {
    let opts = TableBuilderOptions {
        comparator: Arc::new(sstable::comparator::InternalKeyComparator::default()),
        internal_key_filter: true,
        block_size: 256,
        ..Default::default()
    };
    let f = env.create_writable(Path::new(path)).unwrap();
    let mut b = TableBuilder::new(opts, f);
    for e in 0..n {
        let i = e * stride + offset;
        // Overlapping user keys across inputs exercise the drop filter.
        let key = InternalKey::new(
            format!("key{:05}", i / 2).as_bytes(),
            i + 1,
            if i % 7 == 0 {
                ValueType::Deletion
            } else {
                ValueType::Value
            },
        );
        b.add(key.encoded(), format!("v{i}").as_bytes()).unwrap();
    }
    let size = b.finish().unwrap();
    let file = env.open_random_access(Path::new(path)).unwrap();
    let read_opts = TableReadOptions {
        comparator: Arc::new(sstable::comparator::InternalKeyComparator::default()),
        internal_key_filter: true,
        ..Default::default()
    };
    Table::open(file, size, read_opts).unwrap()
}

fn inputs(env: &MemEnv) -> Vec<CompactionInput> {
    (0..3u64)
        .map(|i| CompactionInput {
            tables: vec![build_table(env, &format!("/in{i}"), 3, i, 40)],
        })
        .collect()
}

/// One `[u32 klen][u32 vlen][key][value]` framed pair.
fn push_pair(buf: &mut Vec<u8>, key: &[u8], value: &[u8]) {
    buf.extend_from_slice(&(key.len() as u32).to_le_bytes());
    buf.extend_from_slice(&(value.len() as u32).to_le_bytes());
    buf.extend_from_slice(key);
    buf.extend_from_slice(value);
}

/// A [`MergeSource`] whose pairs arrive over a bounded channel from a
/// decoder thread; sender disconnect is end-of-stream.
struct ChannelSource {
    rx: Receiver<Vec<u8>>,
    batch: Vec<u8>,
    pos: usize,
    key: (usize, usize),
    value: (usize, usize),
    valid: bool,
    fetched: u64,
}

impl ChannelSource {
    fn new(rx: Receiver<Vec<u8>>) -> Self {
        ChannelSource {
            rx,
            batch: Vec::new(),
            pos: 0,
            key: (0, 0),
            value: (0, 0),
            valid: false,
            fetched: 0,
        }
    }
}

impl MergeSource for ChannelSource {
    fn advance(&mut self) -> Result<bool> {
        loop {
            if self.pos + 8 <= self.batch.len() {
                let k = u32::from_le_bytes(self.batch[self.pos..self.pos + 4].try_into().unwrap())
                    as usize;
                let v =
                    u32::from_le_bytes(self.batch[self.pos + 4..self.pos + 8].try_into().unwrap())
                        as usize;
                let ks = self.pos + 8;
                self.key = (ks, ks + k);
                self.value = (ks + k, ks + k + v);
                self.pos = ks + k + v;
                self.valid = true;
                return Ok(true);
            }
            match self.rx.recv() {
                Ok(b) => {
                    self.batch = b;
                    self.pos = 0;
                    self.fetched += 1;
                }
                Err(_) => {
                    self.valid = false;
                    return Ok(false);
                }
            }
        }
    }

    fn valid(&self) -> bool {
        self.valid
    }

    fn key(&self) -> &[u8] {
        &self.batch[self.key.0..self.key.1]
    }

    fn value(&self) -> &[u8] {
        &self.batch[self.value.0..self.value.1]
    }

    fn blocks_fetched(&self) -> u64 {
        self.fetched
    }
}

/// Decoder thread body: decode one input image, ship pairs in batches of
/// three through the bounded channel.
fn feed(input: CompactionInput, tx: SyncSender<Vec<u8>>) {
    let image = build_input_image(&input, W_IN).unwrap();
    let mut dec = InputDecoder::new(&image, W_IN);
    let mut batch = Vec::new();
    let mut in_batch = 0;
    while dec.advance().unwrap() {
        push_pair(&mut batch, dec.key(), dec.value());
        in_batch += 1;
        if in_batch == 3 {
            if tx.send(std::mem::take(&mut batch)).is_err() {
                return;
            }
            in_batch = 0;
        }
    }
    if !batch.is_empty() {
        let _ = tx.send(batch);
    }
}

/// Reference: the same merge, single-threaded (decoders in-process).
fn reference_merge(env: &MemEnv) -> Vec<(Vec<u8>, Vec<u8>, bool)> {
    let inputs = inputs(env);
    let images: Vec<_> = inputs
        .iter()
        .map(|i| build_input_image(i, W_IN).unwrap())
        .collect();
    let mut decoders: Vec<InputDecoder<'_>> = images
        .iter()
        .map(|im| InputDecoder::new(im, W_IN))
        .collect();
    for d in &mut decoders {
        d.advance().unwrap();
    }
    let mut comparer = Comparer::new(DropFilter::new(u64::MAX, true));
    let mut out = Vec::new();
    while let Some(sel) = comparer.select(&decoders) {
        let d = &decoders[sel.input_no];
        out.push((d.key().to_vec(), d.value().to_vec(), sel.drop));
        decoders[sel.input_no].advance().unwrap();
    }
    out
}

#[test]
fn concurrently_fed_comparer_matches_single_threaded_reference() {
    let expected = reference_merge(&MemEnv::new());
    assert!(
        expected.len() > 100,
        "model input too small to be meaningful"
    );
    let expected = Arc::new(expected);

    loom::model(move || {
        let env = MemEnv::new();
        let mut sources = Vec::new();
        let mut threads = Vec::new();
        for input in inputs(&env) {
            let (tx, rx) = sync_channel(2);
            threads.push(loom::thread::spawn(move || feed(input, tx)));
            sources.push(ChannelSource::new(rx));
        }
        for s in &mut sources {
            s.advance().unwrap();
        }
        let mut comparer = Comparer::new(DropFilter::new(u64::MAX, true));
        let mut got = Vec::new();
        while let Some(sel) = comparer.select(&sources) {
            let s = &sources[sel.input_no];
            got.push((s.key().to_vec(), s.value().to_vec(), sel.drop));
            sources[sel.input_no].advance().unwrap();
        }
        assert_eq!(
            got.len(),
            expected.len(),
            "concurrent feed lost or duplicated pairs"
        );
        assert_eq!(
            *expected, got,
            "selection sequence diverged under concurrency"
        );
        for t in threads {
            t.join().expect("decoder thread exits cleanly");
        }
    });
}
