//! Model-based property test: the FCAE engine's output over arbitrary
//! inputs must equal a reference merge computed directly with a
//! `BTreeMap` (newest version per user key; tombstones drop keys at the
//! bottommost level).

use std::collections::BTreeMap;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use fcae::{FcaeConfig, FcaeEngine};
use lsm::compaction::{CompactionEngine, CompactionInput, CompactionRequest, OutputFileFactory};
use proptest::prelude::*;
use sstable::comparator::InternalKeyComparator;
use sstable::env::{MemEnv, StorageEnv, WritableFile};
use sstable::ikey::{parse_internal_key, InternalKey, ValueType};
use sstable::iterator::InternalIterator;
use sstable::table::{Table, TableReadOptions};
use sstable::table_builder::{TableBuilder, TableBuilderOptions};

#[derive(Debug, Clone)]
struct GenEntry {
    key_id: u8,
    is_delete: bool,
    value: Vec<u8>,
}

fn entries_strategy() -> impl Strategy<Value = Vec<Vec<GenEntry>>> {
    // 2..5 inputs, each with 1..60 entries over a small key space so
    // cross-input duplicates are common.
    proptest::collection::vec(
        proptest::collection::vec(
            (
                0u8..30,
                any::<bool>(),
                proptest::collection::vec(any::<u8>(), 0..64),
            )
                .prop_map(|(key_id, is_delete, value)| GenEntry {
                    key_id,
                    is_delete,
                    value,
                }),
            1..60,
        ),
        2..5,
    )
}

struct Factory {
    env: MemEnv,
    n: AtomicU64,
}

impl OutputFileFactory for Factory {
    fn new_output(&self) -> lsm::Result<(u64, Box<dyn WritableFile>)> {
        let n = self.n.fetch_add(1, Ordering::SeqCst) + 1;
        Ok((n, self.env.create_writable(Path::new(&format!("/o{n}")))?))
    }
}

fn builder_options() -> TableBuilderOptions {
    TableBuilderOptions {
        comparator: Arc::new(InternalKeyComparator::default()),
        internal_key_filter: true,
        block_size: 256,
        ..Default::default()
    }
}

/// Builds inputs; sequence numbers are globally unique, with input 0
/// holding the NEWEST sequences (as the host-side input ordering
/// guarantees).
#[allow(clippy::type_complexity)]
fn build(
    env: &MemEnv,
    gen: &[Vec<GenEntry>],
) -> (
    Vec<CompactionInput>,
    BTreeMap<Vec<u8>, (u64, Option<Vec<u8>>)>,
) {
    let mut model: BTreeMap<Vec<u8>, (u64, Option<Vec<u8>>)> = BTreeMap::new();
    let mut inputs = Vec::new();
    let total: u64 = gen.iter().map(|v| v.len() as u64).sum();
    let mut next_seq = total + 1;
    for (i, input_entries) in gen.iter().enumerate() {
        // Dedup within one input by (key, seq) impossibility: assign each
        // entry a unique seq; sort by (key asc, seq desc) for the table.
        let mut rows: Vec<(Vec<u8>, u64, ValueType, Vec<u8>)> = Vec::new();
        for e in input_entries {
            next_seq -= 1;
            let user = format!("key{:03}", e.key_id).into_bytes();
            let ty = if e.is_delete {
                ValueType::Deletion
            } else {
                ValueType::Value
            };
            rows.push((user.clone(), next_seq, ty, e.value.clone()));
            let slot = model.entry(user).or_insert((0, None));
            if next_seq > slot.0 {
                *slot = (
                    next_seq,
                    if e.is_delete {
                        None
                    } else {
                        Some(e.value.clone())
                    },
                );
            }
        }
        rows.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        let f = env.create_writable(Path::new(&format!("/in{i}"))).unwrap();
        let mut b = TableBuilder::new(builder_options(), f);
        for (user, seq, ty, value) in &rows {
            let ik = InternalKey::new(user, *seq, *ty);
            b.add(ik.encoded(), value).unwrap();
        }
        let size = b.finish().unwrap();
        let ropts = TableReadOptions {
            comparator: Arc::new(InternalKeyComparator::default()),
            internal_key_filter: true,
            ..Default::default()
        };
        let file = env
            .open_random_access(Path::new(&format!("/in{i}")))
            .unwrap();
        inputs.push(CompactionInput {
            tables: vec![Table::open(file, size, ropts).unwrap()],
        });
    }
    (inputs, model)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Bottommost compaction: the engine's output equals the reference
    /// map of live (newest, non-deleted) versions.
    #[test]
    fn engine_output_matches_reference_model(gen in entries_strategy()) {
        let env = MemEnv::new();
        let (inputs, model) = build(&env, &gen);
        let engine = FcaeEngine::new(FcaeConfig::nine_input());
        let factory = Factory { env: env.clone(), n: AtomicU64::new(0) };
        let req = CompactionRequest {
            level: 0,
            inputs,
            smallest_snapshot: 1 << 40,
            bottommost: true,
            builder_options: builder_options(),
            max_output_file_size: 8 << 10,
        };
        let outcome = engine.compact(&req, &factory).unwrap();

        // Read back every output entry.
        let mut got: BTreeMap<Vec<u8>, Vec<u8>> = BTreeMap::new();
        let ropts = TableReadOptions {
            comparator: Arc::new(InternalKeyComparator::default()),
            internal_key_filter: true,
            ..Default::default()
        };
        for meta in &outcome.outputs {
            let file = env
                .open_random_access(Path::new(&format!("/o{}", meta.number)))
                .unwrap();
            let table = Table::open(file, meta.file_size, ropts.clone()).unwrap();
            let mut it = table.iter();
            it.seek_to_first();
            while it.valid() {
                let p = parse_internal_key(it.key()).unwrap();
                prop_assert_eq!(
                    p.value_type, ValueType::Value,
                    "bottommost output must hold no tombstones"
                );
                let prev = got.insert(p.user_key.to_vec(), it.value().to_vec());
                prop_assert!(prev.is_none(), "duplicate user key in output");
                it.next();
            }
        }

        let expected: BTreeMap<Vec<u8>, Vec<u8>> = model
            .into_iter()
            .filter_map(|(k, (_, v))| v.map(|v| (k, v)))
            .collect();
        prop_assert_eq!(got, expected);
    }
}
