//! Property test for the loser-tree Comparer: on arbitrary N-way merges —
//! duplicate user keys across streams, tombstones, exhausted and empty
//! streams — the O(log N) tree must produce exactly the selection sequence
//! of the O(N) linear rescan, including drop decisions and stats.

use fcae::comparer::{Comparer, DropFilter, LinearComparer};
use fcae::decoder::MergeSource;
use proptest::prelude::*;
use sstable::comparator::{Comparator, InternalKeyComparator};
use sstable::ikey::{InternalKey, ValueType};

/// In-memory merge stream: a sorted run of encoded internal keys.
#[derive(Clone)]
struct VecSource {
    entries: Vec<Vec<u8>>,
    pos: usize,
}

impl MergeSource for VecSource {
    fn advance(&mut self) -> fcae::Result<bool> {
        self.pos += 1;
        Ok(self.pos < self.entries.len())
    }

    fn valid(&self) -> bool {
        self.pos < self.entries.len()
    }

    fn key(&self) -> &[u8] {
        &self.entries[self.pos]
    }

    fn value(&self) -> &[u8] {
        b"v"
    }

    fn blocks_fetched(&self) -> u64 {
        0
    }
}

/// One raw entry: (user-key id, sequence, is-deletion).
type RawEntry = (u8, u64, bool);

fn streams_strategy() -> impl Strategy<Value = Vec<Vec<RawEntry>>> {
    // 1..=8 streams, each 0..=24 entries drawn from a small user-key
    // alphabet so duplicates across (and within) streams are common.
    prop::collection::vec(
        prop::collection::vec((0u8..12, 0u64..64, any::<bool>()), 0..=24),
        1..=8,
    )
}

fn build_sources(raw: &[Vec<RawEntry>]) -> Vec<VecSource> {
    let icmp = InternalKeyComparator::default();
    raw.iter()
        .map(|entries| {
            let mut keys: Vec<Vec<u8>> = entries
                .iter()
                .map(|&(uk, seq, del)| {
                    let t = if del {
                        ValueType::Deletion
                    } else {
                        ValueType::Value
                    };
                    InternalKey::new(format!("key{uk:02}").as_bytes(), seq, t)
                        .encoded()
                        .to_vec()
                })
                .collect();
            keys.sort_by(|a, b| icmp.compare(a, b));
            VecSource {
                entries: keys,
                pos: 0,
            }
        })
        .collect()
}

/// Drains the sources through a comparer, advancing only the winner —
/// exactly the Key-Value Transfer discipline the tree's contract requires.
/// Returns (selection trace, selections, dropped).
fn drain<C>(mut sources: Vec<VecSource>, mut select: C) -> Vec<(usize, bool, Vec<u8>)>
where
    C: FnMut(&[VecSource]) -> Option<fcae::comparer::Selection>,
{
    let mut trace = Vec::new();
    while let Some(sel) = select(&sources) {
        trace.push((sel.input_no, sel.drop, sources[sel.input_no].key().to_vec()));
        sources[sel.input_no].advance().unwrap();
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn tree_matches_linear_comparer(
        raw in streams_strategy(),
        snapshot in 0u64..80,
        bottommost in any::<bool>(),
    ) {
        let filter = DropFilter::new(snapshot, bottommost);

        let mut tree = Comparer::new(filter.clone());
        let tree_trace = drain(build_sources(&raw), |s| tree.select(s));

        let mut linear = LinearComparer::new(filter);
        let linear_trace = drain(build_sources(&raw), |s| linear.select(s));

        prop_assert_eq!(&tree_trace, &linear_trace);
        prop_assert_eq!(tree.selections, linear.selections);
        prop_assert_eq!(tree.dropped, linear.dropped);
        let total: usize = raw.iter().map(|s| s.len()).sum();
        prop_assert_eq!(tree_trace.len(), total, "every entry selected exactly once");
    }
}
