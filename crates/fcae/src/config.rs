//! Engine configuration: the paper's tunables `N`, `V`, `W_in`, `W_out`
//! (Table I) plus clock frequency, block/table sizes, and PCIe link
//! parameters.

/// PCIe link model (the card is "PCIe gen3 ×16"-attached, §VII-A).
#[derive(Debug, Clone, Copy)]
pub struct PcieConfig {
    /// Effective unidirectional bandwidth in bytes/second. Gen3 ×16 is
    /// 15.75 GB/s raw; ~12.8 GB/s is a typical effective DMA rate.
    pub bandwidth_bytes_per_sec: f64,
    /// Per-DMA-transfer setup latency in seconds (doorbell + descriptor).
    pub per_transfer_latency_sec: f64,
}

impl Default for PcieConfig {
    fn default() -> Self {
        PcieConfig {
            bandwidth_bytes_per_sec: 12.8e9,
            per_transfer_latency_sec: 10e-6,
        }
    }
}

/// Which of the paper's three optimizations are active. All-on is the
/// proposed design (Fig. 5); switching them off reproduces the §V-B/C/D
/// ablations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AblationFlags {
    /// §V-B: split Index/Data Block Decoder+Encoder so index handling is
    /// pipelined (off = the basic design's read-pointer switching stall).
    pub index_data_separation: bool,
    /// §V-C: keys and values travel in separate streams; values skip the
    /// Comparer (off = whole pairs cross every stage byte by byte).
    pub key_value_separation: bool,
    /// §V-D: V-byte-wide value datapath + W-byte AXI bursts (off = 1
    /// byte/cycle everywhere).
    pub wide_transmission: bool,
}

impl AblationFlags {
    /// The full optimized design.
    pub fn all_on() -> Self {
        AblationFlags {
            index_data_separation: true,
            key_value_separation: true,
            wide_transmission: true,
        }
    }

    /// The basic pipeline of Fig. 2.
    pub fn all_off() -> Self {
        AblationFlags {
            index_data_separation: false,
            key_value_separation: false,
            wide_transmission: false,
        }
    }
}

/// Full engine configuration.
#[derive(Debug, Clone, Copy)]
pub struct FcaeConfig {
    /// Number of merge inputs the hardware supports (the paper's `N`).
    pub n_inputs: usize,
    /// Value datapath width in bytes/cycle (`V`).
    pub v: u32,
    /// AXI read width in bytes/cycle (`W_in`).
    pub w_in: u32,
    /// AXI write width in bytes/cycle (`W_out`).
    pub w_out: u32,
    /// Kernel clock in MHz (the KCU1500 engine runs at 200 MHz).
    pub freq_mhz: u64,
    /// Target output data block size (4 KiB in the paper's examples).
    pub data_block_size: usize,
    /// Target output SSTable size (2 MiB in the paper's examples).
    pub table_size: u64,
    /// Off-chip DRAM capacity on the card (KCU1500: 16 GiB). Inputs and
    /// outputs of one offloaded compaction must fit (§IV steps 3-6).
    pub dram_bytes: u64,
    /// PCIe link model.
    pub pcie: PcieConfig,
    /// Active design optimizations.
    pub ablation: AblationFlags,
}

impl FcaeConfig {
    /// The paper's 2-input configuration (§VII-B): `N=2`, maximal AXI
    /// widths, tunable `V` (default 16).
    pub fn two_input() -> Self {
        FcaeConfig {
            n_inputs: 2,
            v: 16,
            w_in: 64,
            w_out: 64,
            freq_mhz: 200,
            data_block_size: 4096,
            table_size: 2 << 20,
            dram_bytes: 16 << 30,
            pcie: PcieConfig::default(),
            ablation: AblationFlags::all_on(),
        }
    }

    /// The paper's multi-input configuration (§VII-C): `N=9` with
    /// `W_in=8`, `V=8` — the only 9-input point that fits the KCU1500
    /// (Table VII).
    pub fn nine_input() -> Self {
        FcaeConfig {
            n_inputs: 9,
            v: 8,
            w_in: 8,
            w_out: 64,
            freq_mhz: 200,
            data_block_size: 4096,
            table_size: 2 << 20,
            dram_bytes: 16 << 30,
            pcie: PcieConfig::default(),
            ablation: AblationFlags::all_on(),
        }
    }

    /// Builder-style override of `V`.
    pub fn with_v(mut self, v: u32) -> Self {
        self.v = v;
        self
    }

    /// Builder-style override of `W_in`.
    pub fn with_w_in(mut self, w_in: u32) -> Self {
        self.w_in = w_in;
        self
    }

    /// Builder-style override of `N`.
    pub fn with_n(mut self, n: usize) -> Self {
        self.n_inputs = n;
        self
    }

    /// Seconds per kernel cycle.
    pub fn cycle_time_sec(&self) -> f64 {
        1.0 / (self.freq_mhz as f64 * 1e6)
    }

    /// Validates the configuration.
    pub fn validate(&self) -> Result<(), String> {
        if self.n_inputs < 2 {
            return Err(format!("N must be >= 2, got {}", self.n_inputs));
        }
        if !self.v.is_power_of_two()
            || !self.w_in.is_power_of_two()
            || !self.w_out.is_power_of_two()
        {
            return Err("V, W_in, W_out must be powers of two".into());
        }
        if self.v > self.w_in && self.ablation.wide_transmission {
            return Err(format!(
                "V ({}) must be <= W_in ({}) — the Stream Downsizer narrows, never widens",
                self.v, self.w_in
            ));
        }
        if self.freq_mhz == 0 || self.data_block_size == 0 || self.table_size == 0 {
            return Err("frequency, block size and table size must be nonzero".into());
        }
        Ok(())
    }
}

impl Default for FcaeConfig {
    fn default() -> Self {
        Self::two_input()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_valid() {
        FcaeConfig::two_input().validate().unwrap();
        FcaeConfig::nine_input().validate().unwrap();
        for v in [8u32, 16, 32, 64] {
            FcaeConfig::two_input().with_v(v).validate().unwrap();
        }
    }

    #[test]
    fn invalid_configs_rejected() {
        assert!(FcaeConfig::two_input().with_n(1).validate().is_err());
        assert!(FcaeConfig::two_input().with_v(24).validate().is_err());
        // V wider than the AXI ingress makes no sense with downsizers.
        assert!(FcaeConfig::two_input()
            .with_w_in(8)
            .with_v(64)
            .validate()
            .is_err());
    }

    #[test]
    fn cycle_time_matches_frequency() {
        let c = FcaeConfig::two_input();
        assert!((c.cycle_time_sec() - 5e-9).abs() < 1e-15);
    }
}
