//! The host/device memory interface of the paper's §VI-B (Fig. 7 and 8).
//!
//! For each input the host lays out three regions before the DMA:
//!
//! * **Index Block Memory** — the index blocks of the input's SSTables,
//!   placed back to back;
//! * **Data Block Memory** — every data block *exactly as stored on disk*
//!   (contents + 5-byte trailer), each block padded to a `W_in`-byte
//!   boundary so the AXI reader can fetch whole beats;
//! * **MetaIn** — per-SSTable offsets of its index block and first data
//!   block, plus the SSTable count.
//!
//! Because blocks are relocated, the offsets inside index-block values no
//! longer point at the data; the Index Block Decoder instead walks blocks
//! in index order, deriving each block's aligned position from the
//! cumulative (aligned) sizes — which only requires the `size` field of
//! each handle, available in the index entries.

use std::sync::Arc;

use lsm::compaction::CompactionInput;
use sstable::comparator::BytewiseComparator;
use sstable::format::{BlockHandle, BLOCK_TRAILER_SIZE};
use sstable::table::Table;

use crate::Result;

/// Rounds `n` up to a multiple of `align`.
#[inline]
pub fn align_up(n: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (n + align - 1) & !(align - 1)
}

/// Per-SSTable entry in MetaIn (Fig. 8): where this table's index block
/// and data blocks live within the input's memory regions.
#[derive(Debug, Clone, Copy)]
pub struct SstableMeta {
    /// Offset of the index block in Index Block Memory.
    pub index_offset: u64,
    /// Length of the index block contents.
    pub index_len: u64,
    /// Offset of the first data block in Data Block Memory.
    pub data_offset: u64,
}

/// MetaIn for one input: SSTable count + per-SSTable offsets.
#[derive(Debug, Clone, Default)]
pub struct MetaIn {
    /// Per-SSTable layout records, in key order.
    pub sstables: Vec<SstableMeta>,
}

/// One input's complete device image.
pub struct InputImage {
    /// MetaIn region.
    pub meta: MetaIn,
    /// Index Block Memory: concatenated decoded index blocks.
    pub index_memory: Vec<u8>,
    /// Data Block Memory: framed data blocks, W_in-aligned.
    pub data_memory: Vec<u8>,
    /// Raw SSTable bytes represented (for the paper's "size of input
    /// SSTables" speed metric).
    pub source_bytes: u64,
}

impl InputImage {
    /// Bytes that cross PCIe for this input (all three regions).
    pub fn transfer_bytes(&self) -> u64 {
        (self.index_memory.len()
            + self.data_memory.len()
            + self.meta.sstables.len() * std::mem::size_of::<SstableMeta>()) as u64
    }
}

/// Builds the device image for one merge input (a run of tables).
pub fn build_input_image(input: &CompactionInput, w_in: u32) -> Result<InputImage> {
    let mut image = InputImage {
        meta: MetaIn::default(),
        index_memory: Vec::new(),
        data_memory: Vec::new(),
        source_bytes: input.bytes(),
    };
    for table in &input.tables {
        append_table(&mut image, table, w_in)?;
    }
    Ok(image)
}

fn append_table(image: &mut InputImage, table: &Arc<Table>, w_in: u32) -> Result<()> {
    let index_contents = table.index_block().contents();
    let meta = SstableMeta {
        index_offset: image.index_memory.len() as u64,
        index_len: index_contents.len() as u64,
        data_offset: image.data_memory.len() as u64,
    };
    image.index_memory.extend_from_slice(index_contents);

    for handle in table.data_block_handles()? {
        let framed = table.read_raw_framed_block(&handle)?;
        image.data_memory.extend_from_slice(&framed);
        let padded = align_up(framed.len() as u64, u64::from(w_in));
        image.data_memory.resize(
            image.data_memory.len() + (padded as usize - framed.len()),
            0,
        );
    }
    image.meta.sstables.push(meta);
    Ok(())
}

/// Builds images for all inputs.
pub fn build_input_images(inputs: &[CompactionInput], w_in: u32) -> Result<Vec<InputImage>> {
    inputs.iter().map(|i| build_input_image(i, w_in)).collect()
}

/// MetaOut entry (Fig. 8): one produced SSTable's key range and size, as
/// returned to the host.
#[derive(Debug, Clone)]
pub struct MetaOutTable {
    /// Smallest internal key written.
    pub smallest: Vec<u8>,
    /// Largest internal key written.
    pub largest: Vec<u8>,
    /// Number of entries.
    pub entries: u64,
    /// Unpadded bytes of framed data blocks (= final file data section).
    pub data_bytes: u64,
}

/// One produced SSTable, device side: its (padded) data block region and
/// the index entries the Index Block Encoder emitted. The host combines
/// these into a standard `.ldb` file (§V-B "the host is in charge of
/// combining data blocks with index blocks into new formatted SSTables").
pub struct OutputTableImage {
    /// Framed data blocks, W_out-aligned in device DRAM.
    pub data_memory: Vec<u8>,
    /// `(last key of block, handle)` pairs; handle offsets are cumulative
    /// *unpadded* positions, i.e. final-file offsets.
    pub index_entries: Vec<(Vec<u8>, BlockHandle)>,
    /// MetaOut record.
    pub meta: MetaOutTable,
}

impl OutputTableImage {
    /// Bytes that cross PCIe back to the host.
    pub fn transfer_bytes(&self) -> u64 {
        let index_bytes: usize = self
            .index_entries
            .iter()
            .map(|(k, _)| k.len() + BlockHandle::MAX_ENCODED_LENGTH)
            .sum();
        (self.data_memory.len() + index_bytes) as u64
    }

    /// Extracts the framed bytes of block `i` (without alignment padding).
    pub fn framed_block(&self, i: usize, w_out: u32) -> &[u8] {
        // Recompute the padded offset of block i by walking sizes.
        let mut padded_offset = 0u64;
        for (_, h) in &self.index_entries[..i] {
            padded_offset = align_up(
                padded_offset + h.size + BLOCK_TRAILER_SIZE as u64,
                u64::from(w_out),
            );
        }
        let len = self.index_entries[i].1.size as usize + BLOCK_TRAILER_SIZE;
        &self.data_memory[padded_offset as usize..padded_offset as usize + len]
    }
}

/// Convenience: parse an index block region back into a
/// [`sstable::block::Block`] (used by the decoder and by tests).
pub fn index_block_from_region(
    index_memory: &[u8],
    meta: &SstableMeta,
) -> Result<sstable::block::Block> {
    let start = meta.index_offset as usize;
    let end = start + meta.index_len as usize;
    let contents = bytes::Bytes::copy_from_slice(&index_memory[start..end]);
    sstable::block::Block::new(contents).map_err(lsm::Error::from)
}

/// The comparator used to walk index blocks (entries are internal keys,
/// but ordering within one table is already fixed; bytewise works for
/// pure iteration).
pub fn index_walk_comparator() -> Arc<dyn sstable::comparator::Comparator> {
    Arc::new(BytewiseComparator)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn align_up_basics() {
        assert_eq!(align_up(0, 64), 0);
        assert_eq!(align_up(1, 64), 64);
        assert_eq!(align_up(64, 64), 64);
        assert_eq!(align_up(65, 8), 72);
        assert_eq!(align_up(4101, 64), 4160);
    }
}
