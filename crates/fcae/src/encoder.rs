//! Encoder stage: Data Block Encoder + Index Block Encoder (paper §V-A,
//! optimized per §V-B).
//!
//! Valid key-value pairs accumulate into a standard prefix-compressed data
//! block; at ~4 KiB the block is Snappy-compressed, framed (compression
//! tag + masked CRC32C) and flushed to the output Data Block Memory, while
//! the Index Block Encoder immediately emits the block's index entry —
//! that immediacy is the §V-B separation optimization. At ~2 MiB the
//! current SSTable completes: its smallest/largest keys go to MetaOut and
//! the encoder resets.
//!
//! Hardware nicety preserved: the index separator is the block's *last
//! key* verbatim — the comparator-driven key shortening LevelDB does on
//! the CPU is skipped, exactly as a hardware encoder would.

use sstable::block_builder::BlockBuilder;
use sstable::format::{frame_block_into, BlockHandle, CompressionType, BLOCK_TRAILER_SIZE};

use crate::memory::{align_up, MetaOutTable, OutputTableImage};

/// Events the encoder reports so the engine can charge the timing model.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct EncodeEvents {
    /// A data block was flushed to DRAM.
    pub block_flushed: bool,
    /// An SSTable was completed.
    pub table_completed: bool,
}

/// The output encoder pair.
pub struct OutputEncoder {
    block_size: usize,
    table_size: u64,
    w_out: u32,
    compression: CompressionType,

    block: BlockBuilder,
    scratch: Vec<u8>,

    /// Current table state.
    data_memory: Vec<u8>,
    index_entries: Vec<(Vec<u8>, BlockHandle)>,
    /// Unpadded (final-file) offset of the next block.
    file_offset: u64,
    smallest: Option<Vec<u8>>,
    largest: Vec<u8>,
    entries: u64,

    finished_tables: Vec<OutputTableImage>,
}

impl OutputEncoder {
    /// Creates an encoder producing `block_size` blocks and `table_size`
    /// tables, writing DRAM at `w_out`-byte alignment.
    pub fn new(
        block_size: usize,
        table_size: u64,
        w_out: u32,
        compression: CompressionType,
    ) -> Self {
        OutputEncoder {
            block_size,
            table_size,
            w_out,
            compression,
            block: BlockBuilder::new(16),
            scratch: Vec::new(),
            data_memory: Vec::new(),
            index_entries: Vec::new(),
            file_offset: 0,
            smallest: None,
            largest: Vec::new(),
            entries: 0,
            finished_tables: Vec::new(),
        }
    }

    /// Adds a valid pair (in merged order); returns flush/complete events.
    pub fn add(&mut self, key: &[u8], value: &[u8]) -> EncodeEvents {
        let mut events = EncodeEvents::default();
        if self.smallest.is_none() {
            self.smallest = Some(key.to_vec());
        }
        self.largest.clear();
        self.largest.extend_from_slice(key);
        self.block.add(key, value);
        self.entries += 1;

        if self.block.current_size_estimate() >= self.block_size {
            self.flush_block();
            events.block_flushed = true;
            if self.file_offset >= self.table_size {
                self.complete_table();
                events.table_completed = true;
            }
        }
        events
    }

    /// Flushes the in-progress block (if non-empty) to data memory and
    /// emits its index entry. Frames straight into the table's data
    /// memory — the only allocation is the index entry's owned key.
    fn flush_block(&mut self) {
        if self.block.is_empty() {
            return;
        }
        let contents = self.block.finish();
        let (_, framed_len) = frame_block_into(
            contents,
            self.compression,
            &mut self.scratch,
            &mut self.data_memory,
        );
        let handle = BlockHandle::new(self.file_offset, (framed_len - BLOCK_TRAILER_SIZE) as u64);
        // Index Block Encoder: entry goes out immediately (§V-B), keyed by
        // the raw last key of the block.
        self.index_entries.push((self.largest.clone(), handle));
        self.file_offset += framed_len as u64;

        // Data memory is written in W_out-aligned beats.
        let padded = align_up(self.data_memory.len() as u64, u64::from(self.w_out));
        self.data_memory.resize(padded as usize, 0);

        self.block.reset();
    }

    /// Completes the current SSTable and resets for the next one.
    fn complete_table(&mut self) {
        if self.index_entries.is_empty() && self.block.is_empty() {
            return;
        }
        self.flush_block();
        let meta = MetaOutTable {
            smallest: self.smallest.take().unwrap_or_default(),
            largest: std::mem::take(&mut self.largest),
            entries: self.entries,
            data_bytes: self.file_offset,
        };
        self.finished_tables.push(OutputTableImage {
            data_memory: std::mem::take(&mut self.data_memory),
            index_entries: std::mem::take(&mut self.index_entries),
            meta,
        });
        self.file_offset = 0;
        self.entries = 0;
    }

    /// Ends the stream: flushes the tail block/table and returns every
    /// produced table image. Returns the number of tail events
    /// (block flush, table completion) for timing.
    pub fn finish(mut self) -> (Vec<OutputTableImage>, EncodeEvents) {
        let mut events = EncodeEvents::default();
        if !self.block.is_empty() {
            events.block_flushed = true;
        }
        if !self.block.is_empty() || !self.index_entries.is_empty() {
            self.complete_table();
            events.table_completed = true;
        }
        (self.finished_tables, events)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sstable::ikey::{InternalKey, ValueType};

    fn ikey(i: u32) -> Vec<u8> {
        InternalKey::new(
            format!("key{i:06}").as_bytes(),
            u64::from(i) + 1,
            ValueType::Value,
        )
        .encoded()
        .to_vec()
    }

    #[test]
    fn blocks_flush_at_block_size() {
        let mut enc = OutputEncoder::new(512, 1 << 20, 64, CompressionType::None);
        let mut flushes = 0;
        for i in 0..200 {
            let e = enc.add(&ikey(i), &[0xab; 64]);
            if e.block_flushed {
                flushes += 1;
            }
        }
        assert!(flushes >= 10, "expected many block flushes, got {flushes}");
        let (tables, _) = enc.finish();
        assert_eq!(tables.len(), 1);
        let t = &tables[0];
        assert_eq!(t.index_entries.len(), flushes + 1); // + tail block
        assert_eq!(t.meta.entries, 200);
    }

    #[test]
    fn tables_split_at_table_size() {
        let mut enc = OutputEncoder::new(512, 4096, 64, CompressionType::None);
        let mut completed = 0;
        for i in 0..400 {
            let e = enc.add(&ikey(i), &[0xcd; 64]);
            if e.table_completed {
                completed += 1;
            }
        }
        let (tables, tail) = enc.finish();
        assert!(completed >= 2, "expected table splits, got {completed}");
        assert_eq!(tables.len(), completed + usize::from(tail.table_completed));
        // Key ranges must be disjoint and ordered.
        for pair in tables.windows(2) {
            assert!(pair[0].meta.largest < pair[1].meta.smallest);
        }
        // Entry counts sum to the input count.
        let total: u64 = tables.iter().map(|t| t.meta.entries).sum();
        assert_eq!(total, 400);
    }

    #[test]
    fn handles_use_unpadded_offsets() {
        let mut enc = OutputEncoder::new(256, 1 << 20, 64, CompressionType::None);
        for i in 0..100 {
            enc.add(&ikey(i), &[1u8; 32]);
        }
        let (tables, _) = enc.finish();
        let t = &tables[0];
        let mut expected = 0u64;
        for (_, h) in &t.index_entries {
            assert_eq!(
                h.offset, expected,
                "handles must be contiguous file offsets"
            );
            expected += h.size + BLOCK_TRAILER_SIZE as u64;
        }
        // framed_block() must round-trip each block despite padding.
        for i in 0..t.index_entries.len() {
            let framed = t.framed_block(i, 64);
            assert_eq!(
                framed.len(),
                t.index_entries[i].1.size as usize + BLOCK_TRAILER_SIZE
            );
        }
    }

    #[test]
    fn empty_stream_produces_nothing() {
        let enc = OutputEncoder::new(4096, 2 << 20, 64, CompressionType::Snappy);
        let (tables, events) = enc.finish();
        assert!(tables.is_empty());
        assert_eq!(events, EncodeEvents::default());
    }
}
