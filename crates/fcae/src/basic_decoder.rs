//! The **basic** Decoder of the paper's Fig. 2 / Algorithm 1, implemented
//! functionally: a *single* read pointer serves both the index block and
//! the data blocks, switching back to the index block after every data
//! block ("After one data block has finished processing, the read pointer
//! goes back to the index block for the meta data of the next data
//! block").
//!
//! The optimized decoder ([`crate::decoder::InputDecoder`]) removes that
//! switching by giving index and data their own pointers (§V-B). Both
//! must produce identical key-value streams — asserted in tests — while
//! the basic one performs strictly more pointer switches, which is what
//! the timing model charges for (`AblationFlags::index_data_separation`).

use sstable::block::{Block, BlockIter};
use sstable::coding::decode_fixed32;
use sstable::crc32c;
use sstable::format::{BlockHandle, CompressionType, BLOCK_TRAILER_SIZE};

use crate::memory::{align_up, index_block_from_region, index_walk_comparator, InputImage};
use crate::Result;

fn corruption(msg: &str) -> lsm::Error {
    lsm::Error::Corruption(msg.to_string())
}

/// Where the single read pointer currently points.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Pointer {
    /// Parsing index entries of SSTable `sst` (entry cursor lives in the
    /// index iterator).
    IndexBlock,
    /// Streaming a data block.
    DataBlock,
}

/// Counters proving the basic design's extra pointer traffic.
#[derive(Debug, Default, Clone, Copy)]
pub struct BasicDecoderStats {
    /// Read-pointer switches between index and data regions (the stall
    /// the §V-B optimization removes).
    pub pointer_switches: u64,
    /// Data blocks fetched.
    pub blocks_fetched: u64,
    /// Pairs decoded.
    pub pairs_decoded: u64,
}

/// The Algorithm 1 decoder.
pub struct BasicInputDecoder<'a> {
    image: &'a InputImage,
    w_in: u32,
    sst_idx: usize,
    index_iter: Option<BlockIter>,
    data_cursor: u64,
    block_iter: Option<BlockIter>,
    pointer: Pointer,
    /// Counters.
    pub stats: BasicDecoderStats,
}

impl<'a> BasicInputDecoder<'a> {
    /// Creates a decoder positioned before the first entry.
    pub fn new(image: &'a InputImage, w_in: u32) -> Self {
        BasicInputDecoder {
            image,
            w_in,
            sst_idx: 0,
            index_iter: None,
            data_cursor: 0,
            block_iter: None,
            pointer: Pointer::IndexBlock,
            stats: BasicDecoderStats::default(),
        }
    }

    /// True when positioned on a decoded pair.
    pub fn valid(&self) -> bool {
        self.block_iter.as_ref().is_some_and(|b| b.valid())
    }

    /// Current internal key.
    pub fn key(&self) -> &[u8] {
        self.block_iter
            .as_ref()
            // PANIC-OK: MergeSource contract — key() only after advance()
            // returned true, which leaves block_iter populated.
            .expect("key on invalid decoder")
            .key()
    }

    /// Current value.
    pub fn value(&self) -> &[u8] {
        self.block_iter
            .as_ref()
            // PANIC-OK: MergeSource contract — value() only after advance()
            // returned true, which leaves block_iter populated.
            .expect("value on invalid decoder")
            .value()
    }

    fn switch(&mut self, to: Pointer) {
        if self.pointer != to {
            self.pointer = to;
            self.stats.pointer_switches += 1;
        }
    }

    /// Advances through the three nested loops of Algorithm 1.
    pub fn advance(&mut self) -> Result<bool> {
        // Inner loop (z): pairs within the current data block.
        if let Some(it) = &mut self.block_iter {
            if it.valid() {
                it.next();
                if it.valid() {
                    self.stats.pairs_decoded += 1;
                    return Ok(true);
                }
            }
        }
        loop {
            // Middle loop (y): next data block — the pointer must return
            // to the index block first.
            self.switch(Pointer::IndexBlock);
            if self.index_iter.is_none() {
                // Outer loop (x): next SSTable's index block.
                if self.sst_idx >= self.image.meta.sstables.len() {
                    self.block_iter = None;
                    return Ok(false);
                }
                let meta = self.image.meta.sstables[self.sst_idx];
                let block = index_block_from_region(&self.image.index_memory, &meta)?;
                let mut it = block.iter(index_walk_comparator());
                it.seek_to_first();
                self.index_iter = Some(it);
                self.data_cursor = meta.data_offset;
                self.sst_idx += 1;
            }
            // PANIC-OK: the branch above just set index_iter to Some or
            // returned; None is unreachable here.
            let index_iter = self.index_iter.as_mut().expect("opened above");
            if !index_iter.valid() {
                self.index_iter = None;
                continue;
            }
            let (handle, _) =
                BlockHandle::decode_from(index_iter.value()).map_err(lsm::Error::from)?;
            index_iter.next();
            // Pointer moves to the data block to stream it in.
            self.switch(Pointer::DataBlock);
            let block = self.fetch_block(&handle)?;
            let mut it = block.iter(index_walk_comparator());
            it.seek_to_first();
            if it.valid() {
                self.stats.pairs_decoded += 1;
                self.block_iter = Some(it);
                return Ok(true);
            }
        }
    }

    fn fetch_block(&mut self, handle: &BlockHandle) -> Result<Block> {
        let framed_len = handle.size as usize + BLOCK_TRAILER_SIZE;
        let start = self.data_cursor as usize;
        let end = start + framed_len;
        if end > self.image.data_memory.len() {
            return Err(corruption("data block exceeds device memory"));
        }
        let framed = &self.image.data_memory[start..end];
        self.data_cursor = align_up(end as u64, u64::from(self.w_in));
        self.stats.blocks_fetched += 1;

        let n = handle.size as usize;
        let stored = crc32c::unmask(decode_fixed32(&framed[n + 1..]));
        if stored != crc32c::value(&framed[..n + 1]) {
            return Err(corruption("data block checksum mismatch"));
        }
        let contents = match CompressionType::from_u8(framed[n]) {
            Some(CompressionType::None) => bytes::Bytes::copy_from_slice(&framed[..n]),
            Some(CompressionType::Snappy) => bytes::Bytes::from(
                snap_codec::decompress(&framed[..n])
                    .map_err(|e| corruption(&format!("snappy: {e}")))?,
            ),
            None => return Err(corruption("unknown compression tag")),
        };
        Block::new(contents).map_err(lsm::Error::from)
    }
}

impl crate::decoder::MergeSource for BasicInputDecoder<'_> {
    fn advance(&mut self) -> Result<bool> {
        BasicInputDecoder::advance(self)
    }

    fn valid(&self) -> bool {
        BasicInputDecoder::valid(self)
    }

    fn key(&self) -> &[u8] {
        BasicInputDecoder::key(self)
    }

    fn value(&self) -> &[u8] {
        BasicInputDecoder::value(self)
    }

    fn blocks_fetched(&self) -> u64 {
        self.stats.blocks_fetched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::decoder::InputDecoder;
    use crate::memory::build_input_image;
    use lsm::compaction::CompactionInput;
    use sstable::comparator::InternalKeyComparator;
    use sstable::env::{MemEnv, StorageEnv};
    use sstable::ikey::{InternalKey, ValueType};
    use sstable::table::{Table, TableReadOptions};
    use sstable::table_builder::{TableBuilder, TableBuilderOptions};
    use std::path::Path;
    use std::sync::Arc;

    fn build_input(env: &MemEnv, n: u32) -> CompactionInput {
        let opts = TableBuilderOptions {
            comparator: Arc::new(InternalKeyComparator::default()),
            internal_key_filter: true,
            block_size: 512,
            ..Default::default()
        };
        let f = env.create_writable(Path::new("/t")).unwrap();
        let mut b = TableBuilder::new(opts, f);
        for i in 0..n {
            let k = InternalKey::new(
                format!("key{i:06}").as_bytes(),
                u64::from(i) + 1,
                ValueType::Value,
            );
            b.add(k.encoded(), format!("val{i}").as_bytes()).unwrap();
        }
        let size = b.finish().unwrap();
        let ropts = TableReadOptions {
            comparator: Arc::new(InternalKeyComparator::default()),
            internal_key_filter: true,
            ..Default::default()
        };
        let file = env.open_random_access(Path::new("/t")).unwrap();
        CompactionInput {
            tables: vec![Table::open(file, size, ropts).unwrap()],
        }
    }

    #[test]
    fn basic_and_optimized_decoders_agree() {
        let env = MemEnv::new();
        let input = build_input(&env, 800);
        let image = build_input_image(&input, 64).unwrap();

        let mut basic = BasicInputDecoder::new(&image, 64);
        let mut optimized = InputDecoder::new(&image, 64);
        let mut pairs = 0u64;
        loop {
            let a = basic.advance().unwrap();
            let b = optimized.advance().unwrap();
            assert_eq!(a, b, "validity diverged at pair {pairs}");
            if !a {
                break;
            }
            assert_eq!(basic.key(), optimized.key(), "key at {pairs}");
            assert_eq!(basic.value(), optimized.value(), "value at {pairs}");
            pairs += 1;
        }
        assert_eq!(pairs, 800);
        assert_eq!(basic.stats.pairs_decoded, optimized.stats.pairs_decoded);
        assert_eq!(basic.stats.blocks_fetched, optimized.stats.blocks_fetched);
    }

    #[test]
    fn basic_decoder_switches_pointer_per_block() {
        let env = MemEnv::new();
        let input = build_input(&env, 800);
        let image = build_input_image(&input, 64).unwrap();
        let mut basic = BasicInputDecoder::new(&image, 64);
        while basic.advance().unwrap() {}
        // Two switches (index -> data -> index) per data block: this is
        // the serialization the §V-B separation removes.
        let blocks = basic.stats.blocks_fetched;
        assert!(blocks > 10, "expect many blocks: {blocks}");
        assert!(
            basic.stats.pointer_switches >= 2 * blocks - 1,
            "switches {} for {blocks} blocks",
            basic.stats.pointer_switches
        );
    }
}
