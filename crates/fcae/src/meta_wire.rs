//! Byte-level wire format for MetaIn / MetaOut (paper Fig. 8).
//!
//! The paper specifies these as raw memory regions the host and device
//! exchange, not as host data structures; this module provides the
//! encoding used across the simulated PCIe boundary, so the "device" side
//! parses exactly what the host laid out.
//!
//! ```text
//! MetaIn  region:  u32 sstable_count
//!                  per sstable: u64 index_offset | u64 index_len |
//!                               u64 data_offset
//! MetaOut region:  u32 table_count
//!                  per table:   u64 data_bytes | u64 entries |
//!                               u32 smallest_len | smallest bytes |
//!                               u32 largest_len  | largest bytes
//! ```
//!
//! All integers little-endian, matching the AXI bus convention.

use crate::memory::{MetaIn, MetaOutTable, SstableMeta};
use crate::Result;

fn corruption(msg: &str) -> lsm::Error {
    lsm::Error::Corruption(format!("meta region: {msg}"))
}

fn take<'a>(src: &mut &'a [u8], n: usize, what: &str) -> Result<&'a [u8]> {
    if src.len() < n {
        return Err(corruption(what));
    }
    let (head, rest) = src.split_at(n);
    *src = rest;
    Ok(head)
}

fn read_u32(src: &mut &[u8], what: &str) -> Result<u32> {
    Ok(u32::from_le_bytes(
        // PANIC-OK: take() returned exactly 4 bytes or erred already.
        take(src, 4, what)?.try_into().expect("4 bytes"),
    ))
}

fn read_u64(src: &mut &[u8], what: &str) -> Result<u64> {
    Ok(u64::from_le_bytes(
        // PANIC-OK: take() returned exactly 8 bytes or erred already.
        take(src, 8, what)?.try_into().expect("8 bytes"),
    ))
}

/// Encodes a MetaIn region.
pub fn encode_meta_in(meta: &MetaIn) -> Vec<u8> {
    let mut out = Vec::with_capacity(4 + meta.sstables.len() * 24);
    out.extend_from_slice(&(meta.sstables.len() as u32).to_le_bytes());
    for s in &meta.sstables {
        out.extend_from_slice(&s.index_offset.to_le_bytes());
        out.extend_from_slice(&s.index_len.to_le_bytes());
        out.extend_from_slice(&s.data_offset.to_le_bytes());
    }
    out
}

/// Decodes a MetaIn region.
pub fn decode_meta_in(mut src: &[u8]) -> Result<MetaIn> {
    let count = read_u32(&mut src, "sstable count")? as usize;
    // A device image never holds more tables than fit in its DRAM.
    if count > 1 << 20 {
        return Err(corruption("implausible sstable count"));
    }
    let mut sstables = Vec::with_capacity(count);
    for _ in 0..count {
        sstables.push(SstableMeta {
            index_offset: read_u64(&mut src, "index offset")?,
            index_len: read_u64(&mut src, "index len")?,
            data_offset: read_u64(&mut src, "data offset")?,
        });
    }
    if !src.is_empty() {
        return Err(corruption("trailing bytes"));
    }
    Ok(MetaIn { sstables })
}

/// Encodes a MetaOut region. Accepts any borrowing iterator (e.g.
/// `tables.iter().map(|t| &t.meta)`) so callers need not clone metas
/// into a temporary slice.
pub fn encode_meta_out<'a, I>(tables: I) -> Vec<u8>
where
    I: IntoIterator<Item = &'a MetaOutTable>,
    I::IntoIter: ExactSizeIterator,
{
    let tables = tables.into_iter();
    let mut out = Vec::new();
    out.extend_from_slice(&(tables.len() as u32).to_le_bytes());
    for t in tables {
        out.extend_from_slice(&t.data_bytes.to_le_bytes());
        out.extend_from_slice(&t.entries.to_le_bytes());
        out.extend_from_slice(&(t.smallest.len() as u32).to_le_bytes());
        out.extend_from_slice(&t.smallest);
        out.extend_from_slice(&(t.largest.len() as u32).to_le_bytes());
        out.extend_from_slice(&t.largest);
    }
    out
}

/// Decodes a MetaOut region.
pub fn decode_meta_out(mut src: &[u8]) -> Result<Vec<MetaOutTable>> {
    let count = read_u32(&mut src, "table count")? as usize;
    if count > 1 << 20 {
        return Err(corruption("implausible table count"));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let data_bytes = read_u64(&mut src, "data bytes")?;
        let entries = read_u64(&mut src, "entries")?;
        let slen = read_u32(&mut src, "smallest len")? as usize;
        let smallest = take(&mut src, slen, "smallest key")?.to_vec();
        let llen = read_u32(&mut src, "largest len")? as usize;
        let largest = take(&mut src, llen, "largest key")?.to_vec();
        out.push(MetaOutTable {
            smallest,
            largest,
            entries,
            data_bytes,
        });
    }
    if !src.is_empty() {
        return Err(corruption("trailing bytes"));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_in() -> MetaIn {
        MetaIn {
            sstables: vec![
                SstableMeta {
                    index_offset: 0,
                    index_len: 512,
                    data_offset: 0,
                },
                SstableMeta {
                    index_offset: 512,
                    index_len: 4096,
                    data_offset: 65536,
                },
            ],
        }
    }

    #[test]
    fn meta_in_roundtrip() {
        let m = sample_in();
        let enc = encode_meta_in(&m);
        let dec = decode_meta_in(&enc).unwrap();
        assert_eq!(dec.sstables.len(), 2);
        assert_eq!(dec.sstables[1].index_len, 4096);
        assert_eq!(dec.sstables[1].data_offset, 65536);

        let empty = decode_meta_in(&encode_meta_in(&MetaIn::default())).unwrap();
        assert!(empty.sstables.is_empty());
    }

    #[test]
    fn meta_out_roundtrip() {
        let tables = vec![
            MetaOutTable {
                smallest: b"aaa".to_vec(),
                largest: b"mmm".to_vec(),
                entries: 1000,
                data_bytes: 2 << 20,
            },
            MetaOutTable {
                smallest: b"n".to_vec(),
                largest: vec![0xffu8; 300],
                entries: 7,
                data_bytes: 4096,
            },
        ];
        let dec = decode_meta_out(&encode_meta_out(&tables)).unwrap();
        assert_eq!(dec.len(), 2);
        assert_eq!(dec[0].entries, 1000);
        assert_eq!(dec[1].largest.len(), 300);
    }

    #[test]
    fn truncation_is_detected() {
        let enc = encode_meta_in(&sample_in());
        for cut in 0..enc.len() {
            assert!(decode_meta_in(&enc[..cut]).is_err(), "cut {cut}");
        }
        let tables = vec![MetaOutTable {
            smallest: b"k".to_vec(),
            largest: b"z".to_vec(),
            entries: 1,
            data_bytes: 10,
        }];
        let enc = encode_meta_out(&tables);
        for cut in 0..enc.len() {
            assert!(decode_meta_out(&enc[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let mut enc = encode_meta_in(&sample_in());
        enc.push(0);
        assert!(decode_meta_in(&enc).is_err());
    }

    #[test]
    fn implausible_counts_rejected() {
        let mut enc = Vec::new();
        enc.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(decode_meta_in(&enc).is_err());
        assert!(decode_meta_out(&enc).is_err());
    }
}
