//! FPGA resource estimation (the paper's Table VII).
//!
//! The paper uses Table VII to justify the multi-input configuration: at
//! `N = 9` the full-width datapath needs 206% of the KCU1500's LUTs, so
//! the authors shrink `W_in` and `V` until the design fits
//! (`W_in = 8, V = 8` → 84%). This module reproduces that decision with
//! an analytic per-module cost model:
//!
//! ```text
//! usage% = BASE + N·(DECODER + v·V + d·(W_in/V − 1)) + c·(N − 1)
//! ```
//!
//! where the `v` term is the V-byte-wide per-input datapath, the `d` term
//! is the Stream Downsizer (cost grows with the width-conversion ratio),
//! and the `c` term is the Comparer tree. Constants are least-squares
//! fitted to the six configurations the paper publishes; the fit
//! reproduces every cell within ~12% relative error (see the tests).

use crate::config::FcaeConfig;

/// Resource utilization as percentages of the target device.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Utilization {
    /// Block RAM usage (percent of 2160 36-Kb BRAMs on the KU115).
    pub bram_pct: f64,
    /// Flip-flop usage (percent of 1,326,720 FFs).
    pub ff_pct: f64,
    /// Lookup-table usage (percent of 663,360 LUTs).
    pub lut_pct: f64,
}

impl Utilization {
    /// True if the design fits the device.
    pub fn feasible(&self) -> bool {
        self.bram_pct <= 100.0 && self.ff_pct <= 100.0 && self.lut_pct <= 100.0
    }
}

/// Per-resource linear model coefficients.
#[derive(Debug, Clone, Copy)]
struct Coefficients {
    base: f64,
    per_input: f64,
    per_v_byte: f64,
    per_downsize_ratio: f64,
    per_compare_leaf: f64,
}

/// Fitted against the paper's Table VII (see module docs).
const BRAM: Coefficients = Coefficients {
    base: 12.640,
    per_input: 0.708,
    per_v_byte: 0.0744,
    per_downsize_ratio: 0.1609,
    per_compare_leaf: 0.0497,
};
const FF: Coefficients = Coefficients {
    base: 5.040,
    per_input: 0.486,
    per_v_byte: 0.0578,
    per_downsize_ratio: 0.2044,
    per_compare_leaf: 0.0568,
};
const LUT: Coefficients = Coefficients {
    base: 31.974,
    per_input: 1.134,
    per_v_byte: 0.5867,
    per_downsize_ratio: 1.9178,
    per_compare_leaf: 0.0,
};

/// Estimates device utilization for a configuration.
#[derive(Debug, Clone, Copy, Default)]
pub struct ResourceModel;

impl ResourceModel {
    /// Estimates utilization for `config`.
    pub fn estimate(&self, config: &FcaeConfig) -> Utilization {
        let n = config.n_inputs as f64;
        let v = config.v as f64;
        let ratio = (config.w_in as f64 / config.v as f64 - 1.0).max(0.0);
        let eval = |c: &Coefficients| {
            c.base
                + n * (c.per_input + c.per_v_byte * v + c.per_downsize_ratio * ratio)
                + c.per_compare_leaf * (n - 1.0)
        };
        Utilization {
            bram_pct: eval(&BRAM),
            ff_pct: eval(&FF),
            lut_pct: eval(&LUT),
        }
    }

    /// Estimates utilization of `instances` identical engine instances on
    /// one card. The shell (PCIe/DMA endpoint, DRAM controllers —
    /// the `base` coefficient) is shared; each additional instance pays
    /// only the per-instance marginal cost (datapath, decoders, comparer
    /// tree).
    pub fn estimate_instances(&self, config: &FcaeConfig, instances: usize) -> Utilization {
        let one = self.estimate(config);
        let k = instances as f64;
        Utilization {
            bram_pct: BRAM.base + (one.bram_pct - BRAM.base) * k,
            ff_pct: FF.base + (one.ff_pct - FF.base) * k,
            lut_pct: LUT.base + (one.lut_pct - LUT.base) * k,
        }
    }

    /// The largest number of engine instances of `config` that fit one
    /// card (at least 1 so a host always has its single engine, even if
    /// only by falling back to software for oversized requests).
    pub fn max_instances(&self, config: &FcaeConfig) -> usize {
        let mut k = 1;
        while k < 64 && self.estimate_instances(config, k + 1).feasible() {
            k += 1;
        }
        k
    }

    /// Searches the largest feasible `(W_in, V)` (powers of two, `V <=
    /// W_in <= max_w`) for a given `N`, preferring higher throughput
    /// (larger V, then larger W_in). This is the §VII-C configuration
    /// selection process.
    pub fn pick_feasible(&self, n_inputs: usize, max_w: u32) -> Option<FcaeConfig> {
        let mut best: Option<(FcaeConfig, (u32, u32))> = None;
        let mut v = 8u32;
        while v <= max_w {
            let mut w_in = v;
            while w_in <= max_w {
                let cfg = FcaeConfig {
                    n_inputs,
                    v,
                    w_in,
                    ..FcaeConfig::two_input()
                };
                if self.estimate(&cfg).feasible() {
                    let rank = (v, w_in);
                    if best.as_ref().is_none_or(|(_, r)| rank > *r) {
                        best = Some((cfg, rank));
                    }
                }
                w_in *= 2;
            }
            v *= 2;
        }
        best.map(|(cfg, _)| cfg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Table VII rows: (N, W_in, V, BRAM%, FF%, LUT%).
    const TABLE7: [(usize, u32, u32, f64, f64, f64); 6] = [
        (2, 64, 16, 18.0, 10.0, 72.0),
        (2, 64, 8, 17.0, 9.0, 63.0),
        (9, 64, 8, 35.0, 27.0, 206.0),
        (9, 16, 16, 30.0, 18.0, 125.0),
        (9, 16, 8, 26.0, 16.0, 103.0),
        (9, 8, 8, 25.0, 14.0, 84.0),
    ];

    fn config(n: usize, w_in: u32, v: u32) -> FcaeConfig {
        FcaeConfig {
            n_inputs: n,
            v,
            w_in,
            ..FcaeConfig::two_input()
        }
    }

    #[test]
    fn reproduces_table7_within_tolerance() {
        let m = ResourceModel;
        for (n, w_in, v, bram, ff, lut) in TABLE7 {
            let u = m.estimate(&config(n, w_in, v));
            for (got, want, name) in [
                (u.bram_pct, bram, "BRAM"),
                (u.ff_pct, ff, "FF"),
                (u.lut_pct, lut, "LUT"),
            ] {
                let err = (got - want).abs() / want;
                assert!(
                    err < 0.15,
                    "N={n} W={w_in} V={v} {name}: model {got:.1} vs paper {want} ({:.0}%)",
                    err * 100.0
                );
            }
        }
    }

    #[test]
    fn feasibility_decisions_match_paper() {
        let m = ResourceModel;
        // The 2-input full-width design fits...
        assert!(m.estimate(&config(2, 64, 16)).feasible());
        // ...the naive 9-input design does not (206% LUTs)...
        assert!(!m.estimate(&config(9, 64, 8)).feasible());
        assert!(!m.estimate(&config(9, 16, 16)).feasible());
        assert!(!m.estimate(&config(9, 16, 8)).feasible());
        // ...and the paper's chosen W_in=8, V=8 point fits.
        assert!(m.estimate(&config(9, 8, 8)).feasible());
    }

    #[test]
    fn pick_feasible_selects_the_papers_configuration() {
        let m = ResourceModel;
        let cfg = m.pick_feasible(9, 64).expect("some 9-input config fits");
        assert_eq!((cfg.w_in, cfg.v), (8, 8), "paper picks W_in=8, V=8 for N=9");
        // For N=2 a full-width configuration is feasible.
        let cfg = m.pick_feasible(2, 64).expect("2-input config fits");
        assert!(cfg.v >= 16);
    }

    #[test]
    fn multi_instance_fit_matches_marginal_cost() {
        let m = ResourceModel;
        // One instance is the plain estimate.
        let cfg = config(2, 64, 16);
        assert_eq!(m.estimate_instances(&cfg, 1), m.estimate(&cfg));
        // Utilization grows strictly with the instance count.
        let u2 = m.estimate_instances(&cfg, 2);
        assert!(u2.lut_pct > m.estimate(&cfg).lut_pct);
        // With the shared shell factored out, a second full-width 2-input
        // instance fits; the narrow 9-input design fits only once; the
        // small 2-input W=8/V=8 point packs several.
        assert_eq!(m.max_instances(&config(2, 64, 16)), 2);
        assert_eq!(m.max_instances(&config(9, 8, 8)), 1);
        assert!(m.max_instances(&config(2, 8, 8)) >= 4);
    }

    #[test]
    fn usage_monotonic_in_n() {
        let m = ResourceModel;
        let mut last = 0.0;
        for n in [2usize, 4, 6, 9, 12] {
            let u = m.estimate(&config(n, 8, 8));
            assert!(u.lut_pct > last);
            last = u.lut_pct;
        }
    }
}
