//! Calibrated model of the paper's CPU compaction baseline.
//!
//! The paper measures single-thread LevelDB v1.1 compaction on an
//! i7-8700K at 5.3–14.8 MB/s (Table V, CPU column). A 2026 Rust merge is
//! over an order of magnitude faster, so reproducing the paper's
//! *acceleration ratios* requires modeling the baseline the authors
//! actually measured. The model is a per-pair cost
//!
//! ```text
//! T_pair = C_FIX
//!        + C_KEY   · L_key · max(1, ⌈log2 N⌉)   (merge compares)
//!        + C_CHILD · max(0, N − 2)               (linear child scan)
//!        + C_VALUE · L_value                     (value movement + snappy)
//!        + C_CACHE · max(0, L_value − 1 KiB)     (LLC-miss penalty)
//! ```
//!
//! with constants least-squares fitted to the six published CPU cells:
//! `C_FIX = 10 µs`, `C_KEY = 0.125 µs/B`, `C_VALUE = 0.056 µs/B`,
//! `C_CACHE = 0.027 µs/B`. The fit reproduces every cell within ~15%
//! (exactly at both ends, 5.3 and 14.8 MB/s — see EXPERIMENTS.md), and
//! in particular the paper's speed *drop* at `L_value = 2048`.
//!
//! The native Rust merge is still measured and reported separately by the
//! benches; this model exists so that ratios are comparable to the paper.

// The fitted constants live in `paper_tables` (Table V, CPU column),
// where the `paper-constants` lint can prove there is exactly one copy;
// re-exported so existing `fcae::cpu_model::X` paths keep working. On
// C_CHILD_US: LevelDB's `MergingIterator` performs a *linear* scan over
// all N children on every `Next()` (plus N virtual calls), so a 9-way
// software merge is substantially slower per entry than a 2-way one —
// this is why the paper's Fig. 13 shows the 9-input engine achieving an
// even larger acceleration ratio despite its lower absolute speed.
pub use crate::paper_tables::{
    CACHE_THRESHOLD_BYTES, C_CACHE_US_PER_BYTE, C_CHILD_US, C_FIX_US, C_KEY_US_PER_BYTE,
    C_VALUE_US_PER_BYTE,
};

/// The CPU baseline cost model.
#[derive(Debug, Clone, Copy)]
pub struct CpuCostModel {
    /// Number of merge inputs (affects compare depth).
    pub n_inputs: usize,
}

impl Default for CpuCostModel {
    fn default() -> Self {
        CpuCostModel { n_inputs: 2 }
    }
}

impl CpuCostModel {
    /// A model for an `n`-way merge.
    pub fn new(n_inputs: usize) -> Self {
        CpuCostModel {
            n_inputs: n_inputs.max(2),
        }
    }

    /// Modeled time to process one pair, in seconds. `key_len` is the
    /// internal key length (user key + 8 mark bytes).
    pub fn pair_time_sec(&self, key_len: usize, value_len: usize) -> f64 {
        let compare_depth = (self.n_inputs as f64).log2().ceil().max(1.0);
        let us = C_FIX_US
            + C_KEY_US_PER_BYTE * key_len as f64 * compare_depth
            + C_CHILD_US * (self.n_inputs.saturating_sub(2)) as f64
            + C_VALUE_US_PER_BYTE * value_len as f64
            + C_CACHE_US_PER_BYTE * value_len.saturating_sub(CACHE_THRESHOLD_BYTES) as f64;
        us * 1e-6
    }

    /// Modeled compaction speed in MB/s for uniform pairs (the paper's
    /// Table V metric: input bytes / kernel time).
    pub fn compaction_speed_mb_s(&self, key_len: usize, value_len: usize) -> f64 {
        let pair_bytes = (key_len + value_len) as f64;
        pair_bytes / self.pair_time_sec(key_len, value_len) / 1e6
    }

    /// Modeled time to compact `bytes` of uniform-pair data, in seconds.
    pub fn compaction_time_sec(&self, bytes: u64, key_len: usize, value_len: usize) -> f64 {
        let pair_bytes = (key_len + value_len) as f64;
        let pairs = bytes as f64 / pair_bytes;
        pairs * self.pair_time_sec(key_len, value_len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const K: usize = 24;

    #[test]
    fn reproduces_table5_cpu_column() {
        // (L_value, paper MB/s). Tolerance 20% per cell.
        let paper = [
            (64usize, 5.3),
            (128, 6.9),
            (256, 9.0),
            (512, 12.2),
            (1024, 14.8),
            (2048, 13.3),
        ];
        let m = CpuCostModel::new(2);
        for (lv, expected) in paper {
            let got = m.compaction_speed_mb_s(K, lv);
            let ratio = got / expected;
            assert!(
                (0.8..=1.25).contains(&ratio),
                "L_value={lv}: model {got:.2} vs paper {expected} (ratio {ratio:.2})"
            );
        }
    }

    #[test]
    fn speed_drops_past_cache_threshold() {
        // The distinctive non-monotonicity at 2 KiB values.
        let m = CpuCostModel::new(2);
        let at_1k = m.compaction_speed_mb_s(K, 1024);
        let at_2k = m.compaction_speed_mb_s(K, 2048);
        assert!(at_2k < at_1k, "expected drop: {at_1k:.2} -> {at_2k:.2}");
    }

    #[test]
    fn more_inputs_cost_more() {
        let two = CpuCostModel::new(2);
        let nine = CpuCostModel::new(9);
        assert!(nine.pair_time_sec(K, 128) > two.pair_time_sec(K, 128));
    }

    #[test]
    fn time_scales_linearly_with_bytes() {
        let m = CpuCostModel::new(2);
        let t1 = m.compaction_time_sec(1 << 20, K, 128);
        let t2 = m.compaction_time_sec(2 << 20, K, 128);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }
}
