//! The cycle model: per-module pipeline periods from the paper's
//! Tables II/III plus calibrated memory-system constants.
//!
//! # Model
//!
//! In steady state a pipelined engine emits one key-value pair per
//! `max(module periods)` cycles. The paper's optimized periods (Table III)
//! are, for key length `K` (internal key: user key + 8 mark bytes) and
//! value length `L`:
//!
//! * Data Block Decoder: `K + L/V`
//! * Comparer: `(2 + ceil(log2 N)) * K`
//! * Key-Value Transfer: `max(K, L/V)`
//! * Data Block Encoder: `K`
//!
//! Two calibrated terms bring the idealized table in line with the
//! paper's *measured* speeds (Table V):
//!
//! * the value actually crosses the V-wide datapath twice (into the
//!   decode FIFO and out through the transfer/output path), and every
//!   value byte also costs a share of the card's DRAM/AXI system —
//!   `VALUE_DATAPATH_PASSES / V + MEM_CYCLES_PER_VALUE_BYTE` cycles/byte;
//! * each emitted pair pays a fixed control overhead
//!   (`ENTRY_OVERHEAD_CYCLES`: varint parsing, FIFO synchronization, the
//!   select in Key-Value Transfer).
//!
//! With `VALUE_DATAPATH_PASSES = 2.0`, `MEM_CYCLES_PER_VALUE_BYTE = 0.12`
//! and `ENTRY_OVERHEAD_CYCLES = 25`, the model reproduces the paper's
//! Table V within ~15% across all 24 (V, L_value) cells — see
//! EXPERIMENTS.md.
//!
//! Ablations (§V-B/C/D) change the periods:
//!
//! * without **wide transmission**, `V = 1` and AXI bursts are 1 B/cycle;
//! * without **key-value separation**, the whole pair crosses the
//!   Comparer path, so its period grows from `(2+⌈log2 N⌉)·K` to
//!   `(2+⌈log2 N⌉)·(K + L/V)`;
//! * without **index/data separation**, the decoder stalls at every block
//!   boundary for the index fetch: one DRAM round trip plus the index
//!   entry parse are added to the block's critical path instead of being
//!   hidden.

use crate::config::FcaeConfig;
// Every period/calibration constant lives in `paper_tables`, next to the
// table it came from; the `paper-constants` lint forbids declaring any
// here. Re-exported so existing `fcae::timing::X` paths keep working.
pub use crate::paper_tables::{
    BASIC_INDEX_FETCH_ROUND_TRIPS, BASIC_INDEX_FLUSH_ROUND_TRIPS, BLOCK_SETUP_CYCLES,
    COMPARER_BASE_STAGES, DRAM_READ_LATENCY_CYCLES, DROPPED_PAIR_PERIOD_FACTOR,
    ENTRY_OVERHEAD_CYCLES, MEM_CYCLES_PER_VALUE_BYTE, PIPELINE_FILL_PERIODS, TABLE_RESET_CYCLES,
    VALUE_DATAPATH_PASSES,
};

/// Per-module cycle attribution for one kernel invocation.
///
/// Each merged pair's period is charged to the module that bottlenecked
/// it (the `max` in [`PipelineModel::pair_period`], ties broken in
/// pipeline order), so the fields always sum to
/// [`PipelineModel::cycles`]: `decoder + comparer + transfer + encoder +
/// axi + overhead + memory == cycles`.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ModuleBreakdown {
    /// Cycles where the Data Block Decoder was the bottleneck.
    pub decoder: f64,
    /// Cycles where the Comparer was the bottleneck.
    pub comparer: f64,
    /// Cycles where Key-Value Transfer was the bottleneck.
    pub transfer: f64,
    /// Cycles where the Data Block Encoder was the bottleneck.
    pub encoder: f64,
    /// Cycles where AXI ingress/egress was the bottleneck.
    pub axi: f64,
    /// Fixed per-entry control overhead plus the pipeline fill.
    pub overhead: f64,
    /// DRAM block fetch/flush stalls and output table resets.
    pub memory: f64,
}

impl ModuleBreakdown {
    /// Sum of every attribution bucket; equals the model's total cycles.
    pub fn total(&self) -> f64 {
        self.decoder
            + self.comparer
            + self.transfer
            + self.encoder
            + self.axi
            + self.overhead
            + self.memory
    }
}

/// Steady-state period of each pipeline module for one pair; the
/// engine's emission period is the max over them.
struct ModulePeriods {
    decoder: f64,
    comparer: f64,
    transfer: f64,
    encoder: f64,
    axi: f64,
}

impl ModulePeriods {
    fn max(&self) -> f64 {
        self.decoder
            .max(self.comparer)
            .max(self.transfer)
            .max(self.encoder)
            .max(self.axi)
    }
}

/// Accumulates cycles for one kernel invocation.
#[derive(Debug, Clone)]
pub struct PipelineModel {
    config: FcaeConfig,
    cycles: f64,
    pairs: u64,
    blocks_in: u64,
    blocks_out: u64,
    tables_out: u64,
    filled: bool,
    breakdown: ModuleBreakdown,
}

impl PipelineModel {
    /// Creates a model for `config`.
    pub fn new(config: FcaeConfig) -> Self {
        PipelineModel {
            config,
            cycles: 0.0,
            pairs: 0,
            blocks_in: 0,
            blocks_out: 0,
            tables_out: 0,
            filled: false,
            breakdown: ModuleBreakdown::default(),
        }
    }

    /// Effective value datapath width (1 when wide transmission is off).
    fn v(&self) -> f64 {
        if self.config.ablation.wide_transmission {
            self.config.v as f64
        } else {
            1.0
        }
    }

    /// Cycles to move `L` value bytes through the datapath + memory system.
    fn value_cycles(&self, value_len: f64) -> f64 {
        value_len * (VALUE_DATAPATH_PASSES / self.v() + MEM_CYCLES_PER_VALUE_BYTE)
    }

    /// Per-module periods (cycles/pair) for a pair of the given lengths.
    fn module_periods(&self, key_len: usize, value_len: usize) -> ModulePeriods {
        let k = key_len as f64;
        let l = value_len as f64;
        let n = self.config.n_inputs as f64;
        let log2n = (self.config.n_inputs as f64).log2().ceil();

        let (cmp_payload, xfer_value) = if self.config.ablation.key_value_separation {
            // Values skip the Comparer entirely.
            (k, self.value_cycles(l))
        } else {
            // Whole pairs cross every stage.
            (k + l / self.v(), self.value_cycles(l) + k)
        };

        // AXI ingress/egress: the stored pair must stream through W_in /
        // W_out byte lanes (per input; inputs stream in parallel).
        let (w_in, w_out) = if self.config.ablation.wide_transmission {
            (self.config.w_in as f64, self.config.w_out as f64)
        } else {
            (1.0, 1.0)
        };
        let _ = n;

        ModulePeriods {
            decoder: k + self.value_cycles(l),
            comparer: (COMPARER_BASE_STAGES + log2n) * cmp_payload,
            transfer: k.max(xfer_value),
            encoder: k,
            axi: ((k + l) / w_in).max((k + l) / w_out),
        }
    }

    /// Steady-state period (cycles/pair) for a pair of the given lengths.
    /// Exposed so experiments can query the analytic bottleneck directly.
    pub fn pair_period(&self, key_len: usize, value_len: usize) -> f64 {
        self.module_periods(key_len, value_len).max()
    }

    /// Charges one merged pair. `kept` is false for entries the validity
    /// check dropped (they skip transfer/encode but still paid decode and
    /// compare, which the max-based period already covers).
    pub fn on_pair(&mut self, key_len: usize, value_len: usize, kept: bool) {
        let periods = self.module_periods(key_len, value_len);
        let period = periods.max();
        if !self.filled {
            // Pipeline fill: one pass through every stage before the
            // steady state.
            let fill = PIPELINE_FILL_PERIODS * period;
            self.cycles += fill;
            self.breakdown.overhead += fill;
            self.filled = true;
        }
        let charged = if kept {
            period
        } else {
            // Dropped pairs do not cross transfer/encode; they cost the
            // decode/compare legs only.
            period * DROPPED_PAIR_PERIOD_FACTOR
        };
        // Attribute the pair to its bottleneck module (ties broken in
        // pipeline order).
        let bucket = if periods.decoder >= period {
            &mut self.breakdown.decoder
        } else if periods.comparer >= period {
            &mut self.breakdown.comparer
        } else if periods.transfer >= period {
            &mut self.breakdown.transfer
        } else if periods.encoder >= period {
            &mut self.breakdown.encoder
        } else {
            &mut self.breakdown.axi
        };
        *bucket += charged;
        self.breakdown.overhead += ENTRY_OVERHEAD_CYCLES;
        self.cycles += charged + ENTRY_OVERHEAD_CYCLES;
        self.pairs += 1;
    }

    /// Charges an input data block fetch (DRAM burst + handle parse).
    pub fn on_block_fetch(&mut self) {
        self.blocks_in += 1;
        let stall = if self.config.ablation.index_data_separation {
            // Index decoding is pipelined; only the DRAM burst setup shows.
            DRAM_READ_LATENCY_CYCLES
        } else {
            // Basic design: the read pointer switches to the index block
            // and back, serializing an extra DRAM round trip + parse.
            BASIC_INDEX_FETCH_ROUND_TRIPS * DRAM_READ_LATENCY_CYCLES + BLOCK_SETUP_CYCLES
        };
        self.cycles += stall + BLOCK_SETUP_CYCLES;
        self.breakdown.memory += stall + BLOCK_SETUP_CYCLES;
    }

    /// Charges an output data block flush (and its index entry, which is
    /// pipelined in the optimized design).
    pub fn on_block_flush(&mut self) {
        self.blocks_out += 1;
        let stall = if self.config.ablation.index_data_separation {
            DRAM_READ_LATENCY_CYCLES
        } else {
            // Basic design buffers the whole index block in BRAM and pays
            // for it when the table completes; charge per block here.
            BASIC_INDEX_FLUSH_ROUND_TRIPS * DRAM_READ_LATENCY_CYCLES + BLOCK_SETUP_CYCLES
        };
        self.cycles += stall;
        self.breakdown.memory += stall;
    }

    /// Charges completion of one output SSTable.
    pub fn on_table_complete(&mut self) {
        self.tables_out += 1;
        self.cycles += TABLE_RESET_CYCLES;
        self.breakdown.memory += TABLE_RESET_CYCLES;
    }

    /// Total cycles so far.
    pub fn cycles(&self) -> f64 {
        self.cycles
    }

    /// Per-module attribution of [`cycles`](Self::cycles).
    pub fn breakdown(&self) -> ModuleBreakdown {
        self.breakdown
    }

    /// Pairs processed.
    pub fn pairs(&self) -> u64 {
        self.pairs
    }

    /// Kernel time in seconds at the configured clock.
    pub fn kernel_time_sec(&self) -> f64 {
        self.cycles * self.config.cycle_time_sec()
    }

    /// The paper's §VII-B metric: input bytes / kernel time, in MB/s.
    pub fn compaction_speed_mb_s(&self, input_bytes: u64) -> f64 {
        let t = self.kernel_time_sec();
        if t == 0.0 {
            return 0.0;
        }
        input_bytes as f64 / t / 1e6
    }

    /// Analytic steady-state compaction speed (MB/s) for uniform pairs,
    /// without running a workload — used by the system simulator, which
    /// charges compaction jobs by bytes.
    pub fn steady_state_speed_mb_s(&self, key_len: usize, value_len: usize) -> f64 {
        let period = self.pair_period(key_len, value_len) + ENTRY_OVERHEAD_CYCLES;
        // Per-block overhead amortized over the pairs in one block.
        let pair_bytes = (key_len + value_len) as f64;
        let pairs_per_block = (self.config.data_block_size as f64 / pair_bytes).max(1.0);
        let block_overhead =
            (DRAM_READ_LATENCY_CYCLES + BLOCK_SETUP_CYCLES + DRAM_READ_LATENCY_CYCLES)
                / pairs_per_block;
        let cycles_per_pair = period + block_overhead;
        let pairs_per_sec = 1.0 / (cycles_per_pair * self.config.cycle_time_sec());
        pairs_per_sec * pair_bytes / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AblationFlags;

    const K: usize = 24; // 16-byte user key + 8 mark bytes

    #[test]
    fn bottleneck_crossover_matches_paper() {
        // §V-D: decoder dominates iff L_key < L_value / ((1+⌈log2 N⌉)·V).
        // With N=2, V=64 and small values, the Comparer (3·K = 72) wins.
        let cfg = FcaeConfig::two_input().with_v(64);
        let m = PipelineModel::new(cfg);
        let small = m.pair_period(K, 64);
        assert!((small - 72.0).abs() < 1e-9, "comparer-bound: {small}");
        // With huge values the decoder term dominates and grows with L.
        let big = m.pair_period(K, 2048);
        assert!(big > 72.0);
        assert!(m.pair_period(K, 4096) > big);
    }

    #[test]
    fn larger_v_never_slows_the_pipeline() {
        for lv in [64usize, 128, 256, 512, 1024, 2048] {
            let mut last = f64::INFINITY;
            for v in [8u32, 16, 32, 64] {
                let m = PipelineModel::new(FcaeConfig::two_input().with_v(v));
                let p = m.pair_period(K, lv);
                assert!(p <= last + 1e-9, "V={v} L={lv}: {p} > {last}");
                last = p;
            }
        }
    }

    #[test]
    fn nine_input_comparer_costs_more() {
        let two = PipelineModel::new(FcaeConfig::two_input().with_v(8));
        let nine = PipelineModel::new(FcaeConfig::nine_input());
        // Small values: comparer-bound, so N=9 is slower.
        assert!(nine.pair_period(K, 64) > two.pair_period(K, 64));
        // Huge values: decoder-bound with the same V, so the gap closes
        // (Fig. 12's convergence).
        let p2 = two.pair_period(K, 2048);
        let p9 = nine.pair_period(K, 2048);
        assert!((p9 - p2).abs() / p2 < 0.05, "p2={p2} p9={p9}");
    }

    #[test]
    fn ablations_only_hurt() {
        let on = PipelineModel::new(FcaeConfig::two_input());
        let mut no_kv = FcaeConfig::two_input();
        no_kv.ablation.key_value_separation = false;
        let no_kv = PipelineModel::new(no_kv);
        let mut no_wide = FcaeConfig::two_input();
        no_wide.ablation.wide_transmission = false;
        let no_wide = PipelineModel::new(no_wide);
        for lv in [64usize, 512, 2048] {
            assert!(no_kv.pair_period(K, lv) >= on.pair_period(K, lv));
            assert!(no_wide.pair_period(K, lv) >= on.pair_period(K, lv));
        }
        // Basic design strictly slower on block fetches too.
        let mut basic = PipelineModel::new(FcaeConfig {
            ablation: AblationFlags::all_off(),
            ..FcaeConfig::two_input()
        });
        let mut optimized = PipelineModel::new(FcaeConfig::two_input());
        basic.on_block_fetch();
        optimized.on_block_fetch();
        assert!(basic.cycles() > optimized.cycles());
    }

    #[test]
    fn kernel_time_scales_with_frequency() {
        let mut cfg = FcaeConfig::two_input();
        cfg.freq_mhz = 200;
        let mut m = PipelineModel::new(cfg);
        m.on_pair(K, 128, true);
        let t200 = m.kernel_time_sec();
        let mut cfg = FcaeConfig::two_input();
        cfg.freq_mhz = 400;
        let mut m = PipelineModel::new(cfg);
        m.on_pair(K, 128, true);
        assert!((t200 / m.kernel_time_sec() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn dropped_pairs_cost_less() {
        let mut kept = PipelineModel::new(FcaeConfig::two_input());
        let mut dropped = PipelineModel::new(FcaeConfig::two_input());
        kept.on_pair(K, 512, true);
        kept.on_pair(K, 512, true);
        dropped.on_pair(K, 512, true);
        dropped.on_pair(K, 512, false);
        assert!(dropped.cycles() < kept.cycles());
    }

    #[test]
    fn breakdown_sums_to_total_cycles() {
        let mut m = PipelineModel::new(FcaeConfig::nine_input());
        for i in 0..200usize {
            m.on_block_fetch();
            m.on_pair(K, 32 + (i * 37) % 2048, i % 7 != 0);
            if i % 13 == 0 {
                m.on_block_flush();
            }
        }
        m.on_table_complete();
        let b = m.breakdown();
        assert!((b.total() - m.cycles()).abs() < 1e-6 * m.cycles());
        assert!(b.overhead > 0.0, "{b:?}");
        assert!(b.memory > 0.0, "{b:?}");
    }

    #[test]
    fn breakdown_attributes_to_the_bottleneck_module() {
        // Small values with N=2, V=64: the comparer dominates (3·K).
        let mut m = PipelineModel::new(FcaeConfig::two_input().with_v(64));
        m.on_pair(K, 64, true);
        let b = m.breakdown();
        assert!(b.comparer > 0.0, "{b:?}");
        assert_eq!(b.decoder, 0.0, "{b:?}");
        // Huge values flip the bottleneck to the decoder.
        let mut m = PipelineModel::new(FcaeConfig::two_input().with_v(64));
        m.on_pair(K, 4096, true);
        let b = m.breakdown();
        assert!(b.decoder > 0.0, "{b:?}");
        assert_eq!(b.comparer, 0.0, "{b:?}");
    }

    #[test]
    fn model_reproduces_table5_shape() {
        // The paper's Table V, V=64 column, in MB/s. Our model should land
        // within 35% of each cell and preserve monotonic growth.
        let paper = [
            (64usize, 175.8),
            (128, 291.7),
            (256, 524.9),
            (512, 745.4),
            (1024, 1026.3),
            (2048, 1205.6),
        ];
        let mut last = 0.0;
        for (lv, expected) in paper {
            let m = PipelineModel::new(FcaeConfig::two_input().with_v(64));
            let speed = m.steady_state_speed_mb_s(K, lv);
            let ratio = speed / expected;
            assert!(
                (0.65..=1.45).contains(&ratio),
                "L_value={lv}: model {speed:.1} vs paper {expected} (ratio {ratio:.2})"
            );
            assert!(speed > last);
            last = speed;
        }
    }
}
