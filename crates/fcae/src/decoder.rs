//! Decoder stage: per-input Index Block Decoder + Data Block Decoder
//! (paper §V-A Algorithm 1, optimized per §V-B).
//!
//! Functionally the decoder walks one input's SSTables in order: for each
//! index entry it locates the next (W_in-aligned) framed data block in
//! Data Block Memory, verifies the CRC, Snappy-decompresses it, and
//! iterates its prefix-compressed entries — producing the decoded
//! key-value stream the Comparer consumes. Counters record how many
//! blocks were fetched so the engine can charge the timing model.
//!
//! The data path is allocation-free in steady state: uncompressed blocks
//! are borrowed in place from Data Block Memory, Snappy blocks are
//! decompressed into one reusable buffer, and entries are parsed with a
//! forward-only [`BlockCursor`] whose key buffer is reused across blocks.
//! Only opening a new SSTable's index block allocates (once per table,
//! not per pair).

use sstable::block::{BlockCursor, BlockIter};
use sstable::coding::decode_fixed32;
use sstable::crc32c;
use sstable::format::{BlockHandle, CompressionType, BLOCK_TRAILER_SIZE};

use crate::memory::{align_up, index_block_from_region, index_walk_comparator, InputImage};
use crate::Result;

fn corruption(msg: impl Into<String>) -> lsm::Error {
    lsm::Error::Corruption(msg.into())
}

/// A positioned stream of decoded key-value pairs, as the Comparer sees
/// it. Implemented by the optimized [`InputDecoder`] and the baseline
/// [`crate::basic_decoder::BasicInputDecoder`] so the merge loop and the
/// Comparer can run against either.
pub trait MergeSource {
    /// Moves to the next pair; `Ok(true)` while pairs remain.
    fn advance(&mut self) -> Result<bool>;
    /// True when positioned on a pair.
    fn valid(&self) -> bool;
    /// Current internal key. Panics when invalid.
    fn key(&self) -> &[u8];
    /// Current value. Panics when invalid.
    fn value(&self) -> &[u8];
    /// Data blocks fetched so far (for timing-model charging).
    fn blocks_fetched(&self) -> u64;
}

/// Decoder counters, polled by the engine after each advance.
#[derive(Debug, Default, Clone, Copy)]
pub struct DecoderStats {
    /// Data blocks fetched from Data Block Memory.
    pub blocks_fetched: u64,
    /// Index blocks opened.
    pub index_blocks_opened: u64,
    /// Key-value pairs decoded.
    pub pairs_decoded: u64,
    /// Compressed bytes consumed.
    pub bytes_consumed: u64,
}

/// Where the current block's contents live.
enum BlockSrc {
    /// No block open.
    None,
    /// Borrowed directly from Data Block Memory (uncompressed block).
    Image { start: usize, end: usize },
    /// In the reusable decompression buffer (Snappy block).
    Buf,
}

/// One input's decoder (Index Block Decoder + Data Block Decoder pair).
pub struct InputDecoder<'a> {
    image: &'a InputImage,
    w_in: u32,
    /// Index of the SSTable currently being decoded.
    sst_idx: usize,
    /// Iterator over the current SSTable's index block.
    index_iter: Option<BlockIter>,
    /// Cursor into Data Block Memory (aligned offset of the next block).
    data_cursor: u64,
    /// Source of the current data block's contents.
    block_src: BlockSrc,
    /// Entry cursor over the current block.
    cursor: BlockCursor,
    /// Reusable Snappy output buffer.
    decomp_buf: Vec<u8>,
    /// Counters.
    pub stats: DecoderStats,
}

/// Expands to the current block's contents slice without borrowing all
/// of `$d` — so `$d.cursor` stays independently borrowable.
macro_rules! contents {
    ($d:expr) => {
        match $d.block_src {
            BlockSrc::None => &[][..],
            BlockSrc::Image { start, end } => &$d.image.data_memory[start..end],
            BlockSrc::Buf => &$d.decomp_buf,
        }
    };
}

impl<'a> InputDecoder<'a> {
    /// Creates a decoder positioned before the first entry; call
    /// [`InputDecoder::advance`] to reach it.
    pub fn new(image: &'a InputImage, w_in: u32) -> Self {
        InputDecoder {
            image,
            w_in,
            sst_idx: 0,
            index_iter: None,
            data_cursor: 0,
            block_src: BlockSrc::None,
            cursor: BlockCursor::new(),
            decomp_buf: Vec::new(),
            stats: DecoderStats::default(),
        }
    }

    /// True when positioned on a decoded pair.
    pub fn valid(&self) -> bool {
        self.cursor.valid()
    }

    /// Current internal key.
    pub fn key(&self) -> &[u8] {
        assert!(self.cursor.valid(), "key on invalid decoder");
        self.cursor.key()
    }

    /// Current value.
    pub fn value(&self) -> &[u8] {
        assert!(self.cursor.valid(), "value on invalid decoder");
        self.cursor.value(contents!(self))
    }

    /// Moves to the next pair, crossing block and SSTable boundaries.
    /// Returns `Ok(true)` while pairs remain.
    pub fn advance(&mut self) -> Result<bool> {
        // Within the current block?
        if self.cursor.advance(contents!(self)) {
            self.stats.pairs_decoded += 1;
            return Ok(true);
        }
        if self.cursor.corrupted() {
            return Err(corruption("malformed entry in data block"));
        }
        // Need the next data block (possibly crossing to the next table).
        loop {
            if self.index_iter.is_none() && !self.open_next_index()? {
                self.block_src = BlockSrc::None;
                return Ok(false);
            }
            // PANIC-OK: open_next_index() just returned true, which only
            // happens after storing Some(index_iter).
            let index_iter = self.index_iter.as_mut().expect("opened above");
            if !index_iter.valid() {
                // This SSTable is exhausted; move on.
                self.index_iter = None;
                continue;
            }
            let (handle, _) =
                BlockHandle::decode_from(index_iter.value()).map_err(lsm::Error::from)?;
            index_iter.next();
            self.fetch_and_decode_block(&handle)?;
            if self.cursor.advance(contents!(self)) {
                self.stats.pairs_decoded += 1;
                return Ok(true);
            }
            if self.cursor.corrupted() {
                return Err(corruption("malformed entry in data block"));
            }
            // Empty block: keep going.
        }
    }

    /// Opens the next SSTable's index block, if any.
    fn open_next_index(&mut self) -> Result<bool> {
        if self.sst_idx >= self.image.meta.sstables.len() {
            return Ok(false);
        }
        let meta = self.image.meta.sstables[self.sst_idx];
        let block = index_block_from_region(&self.image.index_memory, &meta)?;
        let mut it = block.iter(index_walk_comparator());
        it.seek_to_first();
        self.index_iter = Some(it);
        self.data_cursor = meta.data_offset;
        self.sst_idx += 1;
        self.stats.index_blocks_opened += 1;
        Ok(true)
    }

    /// Streams in the block at the data cursor, checks its trailer,
    /// decompresses it if needed, and resets the entry cursor onto it.
    fn fetch_and_decode_block(&mut self, handle: &BlockHandle) -> Result<()> {
        let framed_len = handle.size as usize + BLOCK_TRAILER_SIZE;
        let start = self.data_cursor as usize;
        let end = start + framed_len;
        if end > self.image.data_memory.len() {
            return Err(corruption(format!(
                "data block at {start} (+{framed_len}) exceeds data memory ({})",
                self.image.data_memory.len()
            )));
        }
        let framed = &self.image.data_memory[start..end];
        self.data_cursor = align_up(end as u64, u64::from(self.w_in));
        self.stats.blocks_fetched += 1;
        self.stats.bytes_consumed += framed_len as u64;

        let n = handle.size as usize;
        let ty_byte = framed[n];
        let stored = crc32c::unmask(decode_fixed32(&framed[n + 1..]));
        let actual = crc32c::value(&framed[..n + 1]);
        if stored != actual {
            return Err(corruption("data block checksum mismatch in device memory"));
        }
        match CompressionType::from_u8(ty_byte) {
            Some(CompressionType::None) => {
                self.block_src = BlockSrc::Image {
                    start,
                    end: start + n,
                };
            }
            Some(CompressionType::Snappy) => {
                snap_codec::decompress_to_vec(framed[..n].as_ref(), &mut self.decomp_buf)
                    .map_err(|e| corruption(format!("snappy: {e}")))?;
                self.block_src = BlockSrc::Buf;
            }
            None => return Err(corruption(format!("unknown compression tag {ty_byte}"))),
        }
        self.cursor.reset(contents!(self)).map_err(lsm::Error::from)
    }
}

impl MergeSource for InputDecoder<'_> {
    fn advance(&mut self) -> Result<bool> {
        InputDecoder::advance(self)
    }

    fn valid(&self) -> bool {
        InputDecoder::valid(self)
    }

    fn key(&self) -> &[u8] {
        InputDecoder::key(self)
    }

    fn value(&self) -> &[u8] {
        InputDecoder::value(self)
    }

    fn blocks_fetched(&self) -> u64 {
        self.stats.blocks_fetched
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::build_input_image;
    use lsm::compaction::CompactionInput;
    use sstable::env::{MemEnv, StorageEnv};
    use sstable::ikey::{InternalKey, ValueType};
    use sstable::table::{Table, TableReadOptions};
    use sstable::table_builder::{TableBuilder, TableBuilderOptions};
    use std::path::Path;
    use std::sync::Arc;

    fn internal_table_options() -> TableBuilderOptions {
        TableBuilderOptions {
            comparator: Arc::new(sstable::comparator::InternalKeyComparator::default()),
            internal_key_filter: true,
            block_size: 512,
            ..Default::default()
        }
    }

    fn build_table(env: &MemEnv, path: &str, range: std::ops::Range<u32>) -> Arc<Table> {
        let f = env.create_writable(Path::new(path)).unwrap();
        let mut b = TableBuilder::new(internal_table_options(), f);
        for i in range {
            let key = InternalKey::new(
                format!("key{i:06}").as_bytes(),
                u64::from(i) + 1,
                ValueType::Value,
            );
            b.add(key.encoded(), format!("value-{i}").as_bytes())
                .unwrap();
        }
        let size = b.finish().unwrap();
        let file = env.open_random_access(Path::new(path)).unwrap();
        let read_opts = TableReadOptions {
            comparator: Arc::new(sstable::comparator::InternalKeyComparator::default()),
            internal_key_filter: true,
            ..Default::default()
        };
        Table::open(file, size, read_opts).unwrap()
    }

    #[test]
    fn decoder_streams_all_pairs_in_order() {
        let env = MemEnv::new();
        let t1 = build_table(&env, "/t1", 0..300);
        let t2 = build_table(&env, "/t2", 300..500);
        let input = CompactionInput {
            tables: vec![t1, t2],
        };
        let image = build_input_image(&input, 64).unwrap();
        let mut dec = InputDecoder::new(&image, 64);

        let mut count = 0u32;
        while dec.advance().unwrap() {
            let parsed = sstable::ikey::parse_internal_key(dec.key()).unwrap();
            assert_eq!(parsed.user_key, format!("key{count:06}").as_bytes());
            assert_eq!(dec.value(), format!("value-{count}").as_bytes());
            count += 1;
        }
        assert_eq!(count, 500);
        assert!(dec.stats.blocks_fetched > 1, "multiple blocks expected");
        assert_eq!(dec.stats.index_blocks_opened, 2);
        assert_eq!(dec.stats.pairs_decoded, 500);
    }

    #[test]
    fn decoder_detects_corrupted_device_memory() {
        let env = MemEnv::new();
        let t1 = build_table(&env, "/t1", 0..100);
        let input = CompactionInput { tables: vec![t1] };
        let mut image = build_input_image(&input, 64).unwrap();
        // Flip a byte in the first data block.
        image.data_memory[10] ^= 0xff;
        let mut dec = InputDecoder::new(&image, 64);
        assert!(dec.advance().is_err());
    }

    #[test]
    fn alignment_respected_for_all_widths() {
        let env = MemEnv::new();
        let t1 = build_table(&env, "/t1", 0..200);
        for w in [8u32, 16, 32, 64] {
            let input = CompactionInput {
                tables: vec![Arc::clone(&t1)],
            };
            let image = build_input_image(&input, w).unwrap();
            let mut dec = InputDecoder::new(&image, w);
            let mut count = 0;
            while dec.advance().unwrap() {
                count += 1;
            }
            assert_eq!(count, 200, "w_in={w}");
        }
    }
}
