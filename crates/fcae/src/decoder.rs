//! Decoder stage: per-input Index Block Decoder + Data Block Decoder
//! (paper §V-A Algorithm 1, optimized per §V-B).
//!
//! Functionally the decoder walks one input's SSTables in order: for each
//! index entry it locates the next (W_in-aligned) framed data block in
//! Data Block Memory, verifies the CRC, Snappy-decompresses it, and
//! iterates its prefix-compressed entries — producing the decoded
//! key-value stream the Comparer consumes. Counters record how many
//! blocks were fetched so the engine can charge the timing model.

use sstable::block::{Block, BlockIter};
use sstable::coding::decode_fixed32;
use sstable::crc32c;
use sstable::format::{BlockHandle, CompressionType, BLOCK_TRAILER_SIZE};

use crate::memory::{align_up, index_block_from_region, index_walk_comparator, InputImage};
use crate::Result;

fn corruption(msg: impl Into<String>) -> lsm::Error {
    lsm::Error::Corruption(msg.into())
}

/// Decoder counters, polled by the engine after each advance.
#[derive(Debug, Default, Clone, Copy)]
pub struct DecoderStats {
    /// Data blocks fetched from Data Block Memory.
    pub blocks_fetched: u64,
    /// Index blocks opened.
    pub index_blocks_opened: u64,
    /// Key-value pairs decoded.
    pub pairs_decoded: u64,
    /// Compressed bytes consumed.
    pub bytes_consumed: u64,
}

/// One input's decoder (Index Block Decoder + Data Block Decoder pair).
pub struct InputDecoder<'a> {
    image: &'a InputImage,
    w_in: u32,
    /// Index of the SSTable currently being decoded.
    sst_idx: usize,
    /// Iterator over the current SSTable's index block.
    index_iter: Option<BlockIter>,
    /// Cursor into Data Block Memory (aligned offset of the next block).
    data_cursor: u64,
    /// Iterator over the current decompressed data block.
    block_iter: Option<BlockIter>,
    /// Counters.
    pub stats: DecoderStats,
}

impl<'a> InputDecoder<'a> {
    /// Creates a decoder positioned before the first entry; call
    /// [`InputDecoder::advance`] to reach it.
    pub fn new(image: &'a InputImage, w_in: u32) -> Self {
        InputDecoder {
            image,
            w_in,
            sst_idx: 0,
            index_iter: None,
            data_cursor: 0,
            block_iter: None,
            stats: DecoderStats::default(),
        }
    }

    /// True when positioned on a decoded pair.
    pub fn valid(&self) -> bool {
        self.block_iter.as_ref().is_some_and(|b| b.valid())
    }

    /// Current internal key.
    pub fn key(&self) -> &[u8] {
        self.block_iter
            .as_ref()
            .expect("key on invalid decoder")
            .key()
    }

    /// Current value.
    pub fn value(&self) -> &[u8] {
        self.block_iter
            .as_ref()
            .expect("value on invalid decoder")
            .value()
    }

    /// Moves to the next pair, crossing block and SSTable boundaries.
    /// Returns `Ok(true)` while pairs remain.
    pub fn advance(&mut self) -> Result<bool> {
        // Within the current block?
        if let Some(it) = &mut self.block_iter {
            if it.valid() {
                it.next();
                if it.valid() {
                    self.stats.pairs_decoded += 1;
                    return Ok(true);
                }
            }
        }
        // Need the next data block (possibly crossing to the next table).
        loop {
            if self.index_iter.is_none() && !self.open_next_index()? {
                self.block_iter = None;
                return Ok(false);
            }
            let index_iter = self.index_iter.as_mut().expect("opened above");
            if !index_iter.valid() {
                // This SSTable is exhausted; move on.
                self.index_iter = None;
                continue;
            }
            let (handle, _) =
                BlockHandle::decode_from(index_iter.value()).map_err(lsm::Error::from)?;
            index_iter.next();
            let block = self.fetch_and_decode_block(&handle)?;
            let mut it = block.iter(index_walk_comparator());
            it.seek_to_first();
            if it.valid() {
                self.stats.pairs_decoded += 1;
                self.block_iter = Some(it);
                return Ok(true);
            }
            // Empty block: keep going.
        }
    }

    /// Opens the next SSTable's index block, if any.
    fn open_next_index(&mut self) -> Result<bool> {
        if self.sst_idx >= self.image.meta.sstables.len() {
            return Ok(false);
        }
        let meta = self.image.meta.sstables[self.sst_idx];
        let block = index_block_from_region(&self.image.index_memory, &meta)?;
        let mut it = block.iter(index_walk_comparator());
        it.seek_to_first();
        self.index_iter = Some(it);
        self.data_cursor = meta.data_offset;
        self.sst_idx += 1;
        self.stats.index_blocks_opened += 1;
        Ok(true)
    }

    /// Streams in the block at the data cursor, checks its trailer, and
    /// decompresses it.
    fn fetch_and_decode_block(&mut self, handle: &BlockHandle) -> Result<Block> {
        let framed_len = handle.size as usize + BLOCK_TRAILER_SIZE;
        let start = self.data_cursor as usize;
        let end = start + framed_len;
        if end > self.image.data_memory.len() {
            return Err(corruption(format!(
                "data block at {start} (+{framed_len}) exceeds data memory ({})",
                self.image.data_memory.len()
            )));
        }
        let framed = &self.image.data_memory[start..end];
        self.data_cursor = align_up(end as u64, u64::from(self.w_in));
        self.stats.blocks_fetched += 1;
        self.stats.bytes_consumed += framed_len as u64;

        let n = handle.size as usize;
        let ty_byte = framed[n];
        let stored = crc32c::unmask(decode_fixed32(&framed[n + 1..]));
        let actual = crc32c::value(&framed[..n + 1]);
        if stored != actual {
            return Err(corruption("data block checksum mismatch in device memory"));
        }
        let contents = match CompressionType::from_u8(ty_byte) {
            Some(CompressionType::None) => bytes::Bytes::copy_from_slice(&framed[..n]),
            Some(CompressionType::Snappy) => bytes::Bytes::from(
                snap_codec::decompress(&framed[..n])
                    .map_err(|e| corruption(format!("snappy: {e}")))?,
            ),
            None => return Err(corruption(format!("unknown compression tag {ty_byte}"))),
        };
        Block::new(contents).map_err(lsm::Error::from)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::build_input_image;
    use lsm::compaction::CompactionInput;
    use sstable::env::{MemEnv, StorageEnv};
    use sstable::ikey::{InternalKey, ValueType};
    use sstable::table::{Table, TableReadOptions};
    use sstable::table_builder::{TableBuilder, TableBuilderOptions};
    use std::path::Path;
    use std::sync::Arc;

    fn internal_table_options() -> TableBuilderOptions {
        TableBuilderOptions {
            comparator: Arc::new(sstable::comparator::InternalKeyComparator::default()),
            internal_key_filter: true,
            block_size: 512,
            ..Default::default()
        }
    }

    fn build_table(env: &MemEnv, path: &str, range: std::ops::Range<u32>) -> Arc<Table> {
        let f = env.create_writable(Path::new(path)).unwrap();
        let mut b = TableBuilder::new(internal_table_options(), f);
        for i in range {
            let key = InternalKey::new(
                format!("key{i:06}").as_bytes(),
                u64::from(i) + 1,
                ValueType::Value,
            );
            b.add(key.encoded(), format!("value-{i}").as_bytes())
                .unwrap();
        }
        let size = b.finish().unwrap();
        let file = env.open_random_access(Path::new(path)).unwrap();
        let read_opts = TableReadOptions {
            comparator: Arc::new(sstable::comparator::InternalKeyComparator::default()),
            internal_key_filter: true,
            ..Default::default()
        };
        Table::open(file, size, read_opts).unwrap()
    }

    #[test]
    fn decoder_streams_all_pairs_in_order() {
        let env = MemEnv::new();
        let t1 = build_table(&env, "/t1", 0..300);
        let t2 = build_table(&env, "/t2", 300..500);
        let input = CompactionInput {
            tables: vec![t1, t2],
        };
        let image = build_input_image(&input, 64).unwrap();
        let mut dec = InputDecoder::new(&image, 64);

        let mut count = 0u32;
        while dec.advance().unwrap() {
            let parsed = sstable::ikey::parse_internal_key(dec.key()).unwrap();
            assert_eq!(parsed.user_key, format!("key{count:06}").as_bytes());
            assert_eq!(dec.value(), format!("value-{count}").as_bytes());
            count += 1;
        }
        assert_eq!(count, 500);
        assert!(dec.stats.blocks_fetched > 1, "multiple blocks expected");
        assert_eq!(dec.stats.index_blocks_opened, 2);
        assert_eq!(dec.stats.pairs_decoded, 500);
    }

    #[test]
    fn decoder_detects_corrupted_device_memory() {
        let env = MemEnv::new();
        let t1 = build_table(&env, "/t1", 0..100);
        let input = CompactionInput { tables: vec![t1] };
        let mut image = build_input_image(&input, 64).unwrap();
        // Flip a byte in the first data block.
        image.data_memory[10] ^= 0xff;
        let mut dec = InputDecoder::new(&image, 64);
        assert!(dec.advance().is_err());
    }

    #[test]
    fn alignment_respected_for_all_widths() {
        let env = MemEnv::new();
        let t1 = build_table(&env, "/t1", 0..200);
        for w in [8u32, 16, 32, 64] {
            let input = CompactionInput {
                tables: vec![Arc::clone(&t1)],
            };
            let image = build_input_image(&input, w).unwrap();
            let mut dec = InputDecoder::new(&image, w);
            let mut count = 0;
            while dec.advance().unwrap() {
                count += 1;
            }
            assert_eq!(count, 200, "w_in={w}");
        }
    }
}
