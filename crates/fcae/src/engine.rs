//! The engine: functional N-way merge through the decoder → comparer →
//! transfer → encoder pipeline, host-side image construction and output
//! SSTable assembly, and the timing/transfer accounting — a drop-in
//! [`lsm::CompactionEngine`].

use std::time::{Duration, Instant};

use lsm::compaction::{
    CompactionEngine, CompactionOutcome, CompactionRequest, DropFilter, OutputFileFactory,
    OutputTableMeta,
};
use sstable::block_builder::BlockBuilder;
use sstable::format::{frame_block, CompressionType, Footer};
use sstable::ikey::InternalKey;

use crate::basic_decoder::BasicInputDecoder;
use crate::comparer::Comparer;
use crate::config::FcaeConfig;
use crate::decoder::{InputDecoder, MergeSource};
use crate::encoder::OutputEncoder;
use crate::memory::{build_input_images, OutputTableImage};
use crate::timing::PipelineModel;
use crate::Result;

/// Detailed kernel accounting for one offloaded compaction, beyond what
/// [`CompactionOutcome`] carries.
#[derive(Debug, Clone, Default)]
pub struct KernelReport {
    /// Kernel cycles at the configured clock.
    pub cycles: f64,
    /// Kernel time in seconds.
    pub kernel_time_sec: f64,
    /// Input bytes (paper's speed numerator).
    pub input_bytes: u64,
    /// The paper's compaction speed metric, MB/s.
    pub compaction_speed_mb_s: f64,
    /// Host→device bytes.
    pub bytes_to_device: u64,
    /// Device→host bytes.
    pub bytes_from_device: u64,
    /// Modeled PCIe time in seconds.
    pub pcie_time_sec: f64,
    /// Pairs the comparer examined.
    pub pairs_compared: u64,
    /// Pairs dropped by the validity check.
    pub pairs_dropped: u64,
    /// Per-module attribution of `cycles` (decoder/comparer/transfer/
    /// encoder/AXI bottleneck shares plus overhead and memory stalls).
    pub breakdown: crate::timing::ModuleBreakdown,
}

/// The simulated FPGA compaction engine.
pub struct FcaeEngine {
    config: FcaeConfig,
    /// Last kernel report, for benches that want the detail.
    last_report: std::sync::Mutex<KernelReport>,
}

impl FcaeEngine {
    /// Creates an engine; panics on invalid configurations (they are
    /// programmer errors, caught in tests).
    pub fn new(config: FcaeConfig) -> Self {
        if let Err(e) = config.validate() {
            // PANIC-OK: documented contract of new(); misconfiguration is
            // a programmer error, not a runtime condition to propagate.
            panic!("invalid FCAE configuration: {e}");
        }
        FcaeEngine {
            config,
            last_report: std::sync::Mutex::new(KernelReport::default()),
        }
    }

    /// The engine configuration.
    pub fn config(&self) -> &FcaeConfig {
        &self.config
    }

    /// Kernel accounting of the most recent compaction. Never panics: a
    /// poisoned lock (a panicking compaction elsewhere) still yields the
    /// last stored report.
    pub fn last_report(&self) -> KernelReport {
        self.last_report
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Runs the device pipeline over prepared images, returning the output
    /// table images plus the populated timing model. Exposed for kernel
    /// benchmarks that bypass the store.
    pub fn run_kernel(
        &self,
        images: &[crate::memory::InputImage],
        smallest_snapshot: u64,
        bottommost: bool,
        compression: CompressionType,
        block_size: usize,
        table_size: u64,
    ) -> Result<(Vec<OutputTableImage>, PipelineModel, KernelReport)> {
        let decoders: Vec<InputDecoder<'_>> = images
            .iter()
            .map(|im| InputDecoder::new(im, self.config.w_in))
            .collect();
        self.run_kernel_with(
            decoders,
            images,
            smallest_snapshot,
            bottommost,
            compression,
            block_size,
            table_size,
        )
    }

    /// Same kernel, decoding with the **basic** (Algorithm 1) decoder
    /// instead of the optimized one. The output images must be
    /// byte-identical; only decoder-side counters differ.
    pub fn run_kernel_basic(
        &self,
        images: &[crate::memory::InputImage],
        smallest_snapshot: u64,
        bottommost: bool,
        compression: CompressionType,
        block_size: usize,
        table_size: u64,
    ) -> Result<(Vec<OutputTableImage>, PipelineModel, KernelReport)> {
        let decoders: Vec<BasicInputDecoder<'_>> = images
            .iter()
            .map(|im| BasicInputDecoder::new(im, self.config.w_in))
            .collect();
        self.run_kernel_with(
            decoders,
            images,
            smallest_snapshot,
            bottommost,
            compression,
            block_size,
            table_size,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn run_kernel_with<S: MergeSource>(
        &self,
        mut sources: Vec<S>,
        images: &[crate::memory::InputImage],
        smallest_snapshot: u64,
        bottommost: bool,
        compression: CompressionType,
        block_size: usize,
        table_size: u64,
    ) -> Result<(Vec<OutputTableImage>, PipelineModel, KernelReport)> {
        let mut model = PipelineModel::new(self.config);
        let mut blocks_seen = vec![0u64; sources.len()];
        for (i, s) in sources.iter_mut().enumerate() {
            s.advance()?;
            charge_new_blocks(&mut model, &mut blocks_seen[i], s);
        }

        let mut comparer = Comparer::new(DropFilter::new(smallest_snapshot, bottommost));
        let mut encoder =
            OutputEncoder::new(block_size, table_size, self.config.w_out, compression);

        while let Some(sel) = comparer.select(&sources) {
            let s = &sources[sel.input_no];
            model.on_pair(s.key().len(), s.value().len(), !sel.drop);
            if !sel.drop {
                // Key-Value Transfer forwards both streams to the encoder,
                // borrowed straight out of the decoder's block buffer.
                let events = encoder.add(s.key(), s.value());
                if events.block_flushed {
                    model.on_block_flush();
                }
                if events.table_completed {
                    model.on_table_complete();
                }
            }
            let s = &mut sources[sel.input_no];
            s.advance()?;
            charge_new_blocks(&mut model, &mut blocks_seen[sel.input_no], s);
        }
        let (tables, tail) = encoder.finish();
        if tail.block_flushed {
            model.on_block_flush();
        }
        if tail.table_completed {
            model.on_table_complete();
        }

        let input_bytes: u64 = images.iter().map(|im| im.source_bytes).sum();
        let bytes_to_device: u64 = images.iter().map(|im| im.transfer_bytes()).sum();
        let bytes_from_device: u64 = tables.iter().map(|t| t.transfer_bytes()).sum();
        let pcie = &self.config.pcie;
        let pcie_time_sec = 2.0 * pcie.per_transfer_latency_sec
            + (bytes_to_device + bytes_from_device) as f64 / pcie.bandwidth_bytes_per_sec;
        let report = KernelReport {
            cycles: model.cycles(),
            kernel_time_sec: model.kernel_time_sec(),
            input_bytes,
            compaction_speed_mb_s: model.compaction_speed_mb_s(input_bytes),
            bytes_to_device,
            bytes_from_device,
            pcie_time_sec,
            pairs_compared: comparer.selections,
            pairs_dropped: comparer.dropped,
            breakdown: model.breakdown(),
        };
        Ok((tables, model, report))
    }

    /// Host combine step (§V-B): writes one output image as a standard
    /// SSTable file — data blocks at their recorded offsets, an empty
    /// metaindex block, the index block, and the footer.
    pub fn assemble_table(
        image: &OutputTableImage,
        w_out: u32,
        compression: CompressionType,
        file: &mut dyn sstable::env::WritableFile,
    ) -> Result<u64> {
        let mut offset = 0u64;
        for i in 0..image.index_entries.len() {
            let framed = image.framed_block(i, w_out);
            debug_assert_eq!(offset, image.index_entries[i].1.offset);
            file.append(framed).map_err(lsm::Error::from)?;
            offset += framed.len() as u64;
        }

        let mut scratch = Vec::new();
        // Empty metaindex block (FPGA outputs carry no filter metablock).
        let mut metaindex = BlockBuilder::new(1);
        let contents = metaindex.finish().to_vec();
        let (_, framed) = frame_block(&contents, compression, &mut scratch);
        let metaindex_handle = sstable::format::BlockHandle::new(
            offset,
            (framed.len() - sstable::format::BLOCK_TRAILER_SIZE) as u64,
        );
        file.append(&framed).map_err(lsm::Error::from)?;
        offset += framed.len() as u64;

        // Index block from the device's index entries.
        let mut index = BlockBuilder::new(1);
        for (key, handle) in &image.index_entries {
            index.add(key, &handle.encode());
        }
        let contents = index.finish().to_vec();
        let (_, framed) = frame_block(&contents, compression, &mut scratch);
        let index_handle = sstable::format::BlockHandle::new(
            offset,
            (framed.len() - sstable::format::BLOCK_TRAILER_SIZE) as u64,
        );
        file.append(&framed).map_err(lsm::Error::from)?;
        offset += framed.len() as u64;

        let footer = Footer {
            metaindex_handle,
            index_handle,
        };
        let bytes = footer.encode();
        file.append(&bytes).map_err(lsm::Error::from)?;
        offset += bytes.len() as u64;
        file.flush().map_err(lsm::Error::from)?;
        Ok(offset)
    }
}

/// Charges DRAM block fetches the decoder performed since the last poll.
fn charge_new_blocks<S: MergeSource>(model: &mut PipelineModel, seen: &mut u64, s: &S) {
    while *seen < s.blocks_fetched() {
        model.on_block_fetch();
        *seen += 1;
    }
}

impl CompactionEngine for FcaeEngine {
    fn name(&self) -> &str {
        "fcae"
    }

    fn max_inputs(&self) -> usize {
        self.config.n_inputs
    }

    fn compact(
        &self,
        req: &CompactionRequest,
        out: &dyn OutputFileFactory,
    ) -> Result<CompactionOutcome> {
        // DETERMINISM-OK: host-side wall time reported *alongside* the
        // modeled device time, never fed back into the cycle model.
        #[allow(clippy::disallowed_methods)]
        let start = Instant::now();
        if req.inputs.len() > self.config.n_inputs {
            return Err(lsm::Error::InvalidArgument(format!(
                "{} inputs exceed the engine's N={}",
                req.inputs.len(),
                self.config.n_inputs
            )));
        }

        // Host step 3-4: read SSTables into the device image and "DMA" it.
        // MetaIn crosses the boundary in its wire format (Fig. 8): encode
        // on the host side, decode on the device side.
        let mut images = build_input_images(&req.inputs, self.config.w_in)?;
        // The card's DRAM must hold the inputs plus roughly equal output
        // space (§IV step 3 allocates both before the DMA).
        let image_bytes: u64 = images.iter().map(|im| im.transfer_bytes()).sum();
        if image_bytes.saturating_mul(2) > self.config.dram_bytes {
            return Err(lsm::Error::InvalidArgument(format!(
                "compaction needs ~{} bytes of device DRAM, card has {}",
                image_bytes * 2,
                self.config.dram_bytes
            )));
        }
        for image in &mut images {
            let wire = crate::meta_wire::encode_meta_in(&image.meta);
            image.meta = crate::meta_wire::decode_meta_in(&wire)?;
        }

        // Device steps 5-7: the kernel.
        let (tables, _model, report) = self.run_kernel(
            &images,
            req.smallest_snapshot,
            req.bottommost,
            req.builder_options.compression,
            req.builder_options.block_size,
            req.max_output_file_size,
        )?;

        // MetaOut returns over the same boundary (Fig. 8).
        let meta_out_wire = crate::meta_wire::encode_meta_out(tables.iter().map(|t| &t.meta));
        let metas_from_device = crate::meta_wire::decode_meta_out(&meta_out_wire)?;
        debug_assert_eq!(metas_from_device.len(), tables.len());

        // Host step 8: combine into standard SSTables on disk.
        let mut outcome = CompactionOutcome {
            bytes_read: report.input_bytes,
            entries_dropped: report.pairs_dropped,
            entries_written: report.pairs_compared - report.pairs_dropped,
            ..Default::default()
        };
        for (image, meta) in tables.iter().zip(metas_from_device) {
            let (number, mut file) = out.new_output()?;
            let file_size = Self::assemble_table(
                image,
                self.config.w_out,
                req.builder_options.compression,
                file.as_mut(),
            )?;
            file.sync().map_err(lsm::Error::from)?;
            outcome.bytes_written += file_size;
            outcome.outputs.push(OutputTableMeta {
                number,
                file_size,
                smallest: InternalKey::from_encoded(meta.smallest),
                largest: InternalKey::from_encoded(meta.largest),
                entries: meta.entries,
            });
        }
        outcome.wall_time = start.elapsed();
        outcome.modeled_kernel_time = Some(Duration::from_secs_f64(report.kernel_time_sec));
        outcome.modeled_transfer_time = Some(Duration::from_secs_f64(report.pcie_time_sec));
        *self.last_report.lock().unwrap_or_else(|e| e.into_inner()) = report;
        Ok(outcome)
    }
}

impl Default for FcaeEngine {
    fn default() -> Self {
        FcaeEngine::new(FcaeConfig::two_input())
    }
}
