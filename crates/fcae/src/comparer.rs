//! Comparer stage: Key Compare + Validity Check (paper §V-A).
//!
//! Key Compare selects the smallest internal key across the N decoded
//! streams. Validity Check inspects the selected key's mark fields: an
//! entry shadowed by a newer version of the same user key, or a deletion
//! tombstone compacting into the bottom level, is flagged `Drop`; the
//! Key-Value Transfer stage then discards its streams instead of
//! forwarding them to the Encoder. The drop rules are shared with the
//! software engine via [`lsm::compaction::DropFilter`] — by construction
//! both engines keep exactly the same entries.

use sstable::comparator::{Comparator, InternalKeyComparator};

use crate::decoder::InputDecoder;

pub use lsm::compaction::DropFilter;

/// The Comparer's per-selection output: which input holds the smallest
/// key, and whether the validity check passed (paper: the `Input No.` and
/// `Drop` flags sent to Key-Value Transfer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Selection {
    /// Index of the winning input.
    pub input_no: usize,
    /// True if the entry must be dropped.
    pub drop: bool,
}

/// N-way smallest-key selection with validity checking.
pub struct Comparer {
    icmp: InternalKeyComparator,
    filter: DropFilter,
    /// Selections made (for stats).
    pub selections: u64,
    /// Entries flagged invalid.
    pub dropped: u64,
}

impl Comparer {
    /// Creates a comparer with the given drop rules.
    pub fn new(filter: DropFilter) -> Self {
        Comparer {
            icmp: InternalKeyComparator::default(),
            filter,
            selections: 0,
            dropped: 0,
        }
    }

    /// Selects the input with the smallest current key and checks its
    /// validity. Returns `None` when every stream is exhausted.
    ///
    /// Internal keys are unique (unique sequence numbers), so no
    /// tie-breaking is needed; newest-first input ordering is still the
    /// convention, matching the host-side input construction.
    pub fn select(&mut self, decoders: &[InputDecoder<'_>]) -> Option<Selection> {
        let mut winner: Option<usize> = None;
        for (i, d) in decoders.iter().enumerate() {
            if !d.valid() {
                continue;
            }
            match winner {
                None => winner = Some(i),
                Some(w) => {
                    if self.icmp.compare(d.key(), decoders[w].key()) == std::cmp::Ordering::Less {
                        winner = Some(i);
                    }
                }
            }
        }
        let input_no = winner?;
        self.selections += 1;
        let drop = self.filter.should_drop(decoders[input_no].key());
        if drop {
            self.dropped += 1;
        }
        Some(Selection { input_no, drop })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::build_input_image;
    use lsm::compaction::CompactionInput;
    use sstable::env::{MemEnv, StorageEnv};
    use sstable::ikey::{parse_internal_key, InternalKey, ValueType};
    use sstable::table::{Table, TableReadOptions};
    use sstable::table_builder::{TableBuilder, TableBuilderOptions};
    use std::path::Path;
    use std::sync::Arc;

    fn build_table(
        env: &MemEnv,
        path: &str,
        entries: &[(&str, u64, ValueType, &str)],
    ) -> Arc<Table> {
        let opts = TableBuilderOptions {
            comparator: Arc::new(InternalKeyComparator::default()),
            internal_key_filter: true,
            ..Default::default()
        };
        let f = env.create_writable(Path::new(path)).unwrap();
        let mut b = TableBuilder::new(opts, f);
        for (k, seq, t, v) in entries {
            let key = InternalKey::new(k.as_bytes(), *seq, *t);
            b.add(key.encoded(), v.as_bytes()).unwrap();
        }
        let size = b.finish().unwrap();
        let file = env.open_random_access(Path::new(path)).unwrap();
        let read_opts = TableReadOptions {
            comparator: Arc::new(InternalKeyComparator::default()),
            internal_key_filter: true,
            ..Default::default()
        };
        Table::open(file, size, read_opts).unwrap()
    }

    #[test]
    fn selects_global_order_and_drops_shadowed() {
        let env = MemEnv::new();
        // Newer input: a@10 (update), c@11 (delete).
        let t_new = build_table(
            &env,
            "/new",
            &[
                ("a", 10, ValueType::Value, "new-a"),
                ("c", 11, ValueType::Deletion, ""),
            ],
        );
        // Older input: a@3, b@4, c@5.
        let t_old = build_table(
            &env,
            "/old",
            &[
                ("a", 3, ValueType::Value, "old-a"),
                ("b", 4, ValueType::Value, "old-b"),
                ("c", 5, ValueType::Value, "old-c"),
            ],
        );
        let inputs = [
            CompactionInput {
                tables: vec![t_new],
            },
            CompactionInput {
                tables: vec![t_old],
            },
        ];
        let images: Vec<_> = inputs
            .iter()
            .map(|i| build_input_image(i, 64).unwrap())
            .collect();
        let mut decoders: Vec<_> = images
            .iter()
            .map(|im| crate::decoder::InputDecoder::new(im, 64))
            .collect();
        for d in &mut decoders {
            d.advance().unwrap();
        }

        // Bottom-level compaction, everything older than snapshot.
        let mut cmp = Comparer::new(DropFilter::new(1000, true));
        let mut kept = Vec::new();
        let mut dropped = Vec::new();
        while let Some(sel) = cmp.select(&decoders) {
            let key = decoders[sel.input_no].key().to_vec();
            let parsed = parse_internal_key(&key).unwrap();
            let label = format!(
                "{}@{}",
                String::from_utf8_lossy(parsed.user_key),
                parsed.sequence
            );
            if sel.drop {
                dropped.push(label);
            } else {
                kept.push(label);
            }
            decoders[sel.input_no].advance().unwrap();
        }
        assert_eq!(kept, ["a@10", "b@4"]);
        // a@3 shadowed; c@11 tombstone at bottom; c@5 under tombstone.
        assert_eq!(dropped, ["a@3", "c@11", "c@5"]);
        assert_eq!(cmp.selections, 5);
        assert_eq!(cmp.dropped, 3);
    }
}
