//! Comparer stage: Key Compare + Validity Check (paper §V-A).
//!
//! Key Compare selects the smallest internal key across the N decoded
//! streams. Validity Check inspects the selected key's mark fields: an
//! entry shadowed by a newer version of the same user key, or a deletion
//! tombstone compacting into the bottom level, is flagged `Drop`; the
//! Key-Value Transfer stage then discards its streams instead of
//! forwarding them to the Encoder. The drop rules are shared with the
//! software engine via [`lsm::compaction::DropFilter`] — by construction
//! both engines keep exactly the same entries.
//!
//! The default [`Comparer`] runs Key Compare as a loser tree — the
//! software analogue of the hardware comparison network — so each
//! selection after the first costs O(log N) comparisons instead of the
//! O(N) rescan of [`LinearComparer`]. Both produce identical selection
//! sequences (property-tested); the cycle model is charged per *pair*,
//! so swapping the software algorithm leaves timing results bit-identical.

use sstable::comparator::{Comparator, InternalKeyComparator};
use sstable::losertree::LoserTree;

use crate::decoder::MergeSource;

pub use lsm::compaction::DropFilter;

/// The Comparer's per-selection output: which input holds the smallest
/// key, and whether the validity check passed (paper: the `Input No.` and
/// `Drop` flags sent to Key-Value Transfer).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Selection {
    /// Index of the winning input.
    pub input_no: usize,
    /// True if the entry must be dropped.
    pub drop: bool,
}

/// `a` beats `b`: valid before exhausted, then smaller internal key,
/// then lower input index (keys are unique in practice, but the
/// tie-break keeps the ordering strict on arbitrary inputs).
fn beats<S: MergeSource>(icmp: &InternalKeyComparator, sources: &[S], a: usize, b: usize) -> bool {
    match (sources[a].valid(), sources[b].valid()) {
        (true, false) => true,
        (false, _) => false,
        (true, true) => match icmp.compare(sources[a].key(), sources[b].key()) {
            std::cmp::Ordering::Less => true,
            std::cmp::Ordering::Greater => false,
            std::cmp::Ordering::Equal => a < b,
        },
    }
}

/// N-way smallest-key selection (loser tree) with validity checking.
///
/// Contract: between two `select` calls, only the stream returned by the
/// previous selection may have advanced — exactly how Key-Value Transfer
/// drains the winner. The tree replays just that leaf's path; violating
/// the contract yields stale selections (use a fresh comparer instead).
pub struct Comparer {
    icmp: InternalKeyComparator,
    filter: DropFilter,
    tree: LoserTree,
    /// Winner of the previous selection, whose leaf must be replayed.
    last_winner: Option<usize>,
    built: bool,
    /// Selections made (for stats).
    pub selections: u64,
    /// Entries flagged invalid.
    pub dropped: u64,
}

impl Comparer {
    /// Creates a comparer with the given drop rules.
    pub fn new(filter: DropFilter) -> Self {
        Comparer {
            icmp: InternalKeyComparator::default(),
            filter,
            tree: LoserTree::new(0),
            last_winner: None,
            built: false,
            selections: 0,
            dropped: 0,
        }
    }

    /// Selects the input with the smallest current key and checks its
    /// validity. Returns `None` when every stream is exhausted.
    pub fn select<S: MergeSource>(&mut self, sources: &[S]) -> Option<Selection> {
        let icmp = &self.icmp;
        if !self.built || self.tree.len() != sources.len() {
            self.tree = LoserTree::new(sources.len());
            self.tree.rebuild(|a, b| beats(icmp, sources, a, b));
            self.built = true;
        } else if let Some(w) = self.last_winner {
            self.tree.update(w, |a, b| beats(icmp, sources, a, b));
        }
        if sources.is_empty() {
            return None;
        }
        let input_no = self.tree.winner();
        if !sources[input_no].valid() {
            // The best stream is exhausted, so all are.
            self.last_winner = None;
            return None;
        }
        self.last_winner = Some(input_no);
        self.selections += 1;
        let drop = self.filter.should_drop(sources[input_no].key());
        if drop {
            self.dropped += 1;
        }
        Some(Selection { input_no, drop })
    }
}

/// The original O(N)-per-selection Comparer: rescans every stream. Kept
/// as the differential-testing baseline for [`Comparer`]; unlike the
/// tree it tolerates arbitrary stream movement between calls.
pub struct LinearComparer {
    icmp: InternalKeyComparator,
    filter: DropFilter,
    /// Selections made (for stats).
    pub selections: u64,
    /// Entries flagged invalid.
    pub dropped: u64,
}

impl LinearComparer {
    /// Creates a comparer with the given drop rules.
    pub fn new(filter: DropFilter) -> Self {
        LinearComparer {
            icmp: InternalKeyComparator::default(),
            filter,
            selections: 0,
            dropped: 0,
        }
    }

    /// Selects the input with the smallest current key and checks its
    /// validity. Returns `None` when every stream is exhausted.
    pub fn select<S: MergeSource>(&mut self, sources: &[S]) -> Option<Selection> {
        let mut winner: Option<usize> = None;
        for (i, s) in sources.iter().enumerate() {
            if !s.valid() {
                continue;
            }
            match winner {
                None => winner = Some(i),
                Some(w) => {
                    if self.icmp.compare(s.key(), sources[w].key()) == std::cmp::Ordering::Less {
                        winner = Some(i);
                    }
                }
            }
        }
        let input_no = winner?;
        self.selections += 1;
        let drop = self.filter.should_drop(sources[input_no].key());
        if drop {
            self.dropped += 1;
        }
        Some(Selection { input_no, drop })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memory::build_input_image;
    use lsm::compaction::CompactionInput;
    use sstable::env::{MemEnv, StorageEnv};
    use sstable::ikey::{parse_internal_key, InternalKey, ValueType};
    use sstable::table::{Table, TableReadOptions};
    use sstable::table_builder::{TableBuilder, TableBuilderOptions};
    use std::path::Path;
    use std::sync::Arc;

    fn build_table(
        env: &MemEnv,
        path: &str,
        entries: &[(&str, u64, ValueType, &str)],
    ) -> Arc<Table> {
        let opts = TableBuilderOptions {
            comparator: Arc::new(InternalKeyComparator::default()),
            internal_key_filter: true,
            ..Default::default()
        };
        let f = env.create_writable(Path::new(path)).unwrap();
        let mut b = TableBuilder::new(opts, f);
        for (k, seq, t, v) in entries {
            let key = InternalKey::new(k.as_bytes(), *seq, *t);
            b.add(key.encoded(), v.as_bytes()).unwrap();
        }
        let size = b.finish().unwrap();
        let file = env.open_random_access(Path::new(path)).unwrap();
        let read_opts = TableReadOptions {
            comparator: Arc::new(InternalKeyComparator::default()),
            internal_key_filter: true,
            ..Default::default()
        };
        Table::open(file, size, read_opts).unwrap()
    }

    fn run_selection(
        cmp_kind: &str,
        decoders: &mut [crate::decoder::InputDecoder<'_>],
    ) -> (Vec<String>, Vec<String>, u64, u64) {
        let filter = DropFilter::new(1000, true);
        let mut tree = Comparer::new(filter.clone());
        let mut linear = LinearComparer::new(filter);
        let mut kept = Vec::new();
        let mut dropped = Vec::new();
        loop {
            let sel = match cmp_kind {
                "tree" => tree.select(&*decoders),
                _ => linear.select(&*decoders),
            };
            let Some(sel) = sel else { break };
            let key = decoders[sel.input_no].key().to_vec();
            let parsed = parse_internal_key(&key).unwrap();
            let label = format!(
                "{}@{}",
                String::from_utf8_lossy(parsed.user_key),
                parsed.sequence
            );
            if sel.drop {
                dropped.push(label);
            } else {
                kept.push(label);
            }
            decoders[sel.input_no].advance().unwrap();
        }
        match cmp_kind {
            "tree" => (kept, dropped, tree.selections, tree.dropped),
            _ => (kept, dropped, linear.selections, linear.dropped),
        }
    }

    #[test]
    fn selects_global_order_and_drops_shadowed() {
        let env = MemEnv::new();
        // Newer input: a@10 (update), c@11 (delete).
        let t_new = build_table(
            &env,
            "/new",
            &[
                ("a", 10, ValueType::Value, "new-a"),
                ("c", 11, ValueType::Deletion, ""),
            ],
        );
        // Older input: a@3, b@4, c@5.
        let t_old = build_table(
            &env,
            "/old",
            &[
                ("a", 3, ValueType::Value, "old-a"),
                ("b", 4, ValueType::Value, "old-b"),
                ("c", 5, ValueType::Value, "old-c"),
            ],
        );
        let inputs = [
            CompactionInput {
                tables: vec![t_new],
            },
            CompactionInput {
                tables: vec![t_old],
            },
        ];
        let images: Vec<_> = inputs
            .iter()
            .map(|i| build_input_image(i, 64).unwrap())
            .collect();

        for kind in ["tree", "linear"] {
            let mut decoders: Vec<_> = images
                .iter()
                .map(|im| crate::decoder::InputDecoder::new(im, 64))
                .collect();
            for d in &mut decoders {
                d.advance().unwrap();
            }
            // Bottom-level compaction, everything older than snapshot.
            let (kept, dropped, selections, dropped_n) = run_selection(kind, &mut decoders);
            assert_eq!(kept, ["a@10", "b@4"], "{kind}");
            // a@3 shadowed; c@11 tombstone at bottom; c@5 under tombstone.
            assert_eq!(dropped, ["a@3", "c@11", "c@5"], "{kind}");
            assert_eq!(selections, 5, "{kind}");
            assert_eq!(dropped_n, 3, "{kind}");
        }
    }
}
