//! The single source of truth for every timing/period constant in the
//! cycle models, mirroring the paper's tables.
//!
//! The `paper-constants` lint (`cargo xtask lint`) enforces that
//! [`crate::timing`] and [`crate::cpu_model`] declare **no** numeric
//! constants of their own and use no magic float literals in model
//! formulas: a period or cost constant exists exactly once, here, next to
//! the table it came from. That keeps the repro's headline claim — cycle
//! counts derived from the paper's Tables II/III, not tuned in place —
//! auditable by machine.
//!
//! Layout:
//!
//! * **Table III** (optimized per-module periods) — structural scalars of
//!   the period formulas.
//! * **Table V calibration** — the three measured-speed calibration terms
//!   (datapath passes, memory cycles, per-pair overhead) plus the
//!   memory-system latencies cited in §V-B.
//! * **Table V, CPU column** — the least-squares fit of the paper's
//!   LevelDB v1.1 single-thread baseline.

// ---------------------------------------------------------------------
// Table III: optimized per-module pipeline periods.
// ---------------------------------------------------------------------

/// The Comparer's period is `(2 + ceil(log2 N)) * K` (Table III): two
/// fixed compare/validity stages plus the log-depth selection tree.
pub const COMPARER_BASE_STAGES: f64 = 2.0;

/// Pipeline fill cost charged on the first pair of a kernel invocation,
/// approximated as this many steady-state periods (one pass through
/// decode, compare, transfer, encode before the pipeline is full).
pub const PIPELINE_FILL_PERIODS: f64 = 4.0;

/// A validity-dropped pair skips the transfer/encode legs; it pays this
/// fraction of the steady-state period (decode + compare only).
pub const DROPPED_PAIR_PERIOD_FACTOR: f64 = 0.5;

// ---------------------------------------------------------------------
// Table V calibration (measured speeds) + §V-B memory system.
// ---------------------------------------------------------------------

/// Value bytes cross the V-wide datapath this many times (into the
/// decode FIFO and out through the transfer/output path).
pub const VALUE_DATAPATH_PASSES: f64 = 2.0;

/// Shared DRAM/AXI cost per value byte (cycles), calibrated to Table V.
pub const MEM_CYCLES_PER_VALUE_BYTE: f64 = 0.12;

/// Fixed per-pair control overhead (cycles): varint parsing, FIFO
/// synchronization, the select in Key-Value Transfer. Calibrated to
/// Table V.
pub const ENTRY_OVERHEAD_CYCLES: f64 = 25.0;

/// DRAM read latency on the card (the paper cites 7-8 cycles; §V-B).
pub const DRAM_READ_LATENCY_CYCLES: f64 = 8.0;

/// Per-block bookkeeping: handle parse, FIFO drain/refill.
pub const BLOCK_SETUP_CYCLES: f64 = 16.0;

/// Per-table reset of the encoder state (§V-A: "the Encoder gets reset").
pub const TABLE_RESET_CYCLES: f64 = 64.0;

/// Without index/data separation the read pointer switches to the index
/// block and back on every fetch, serializing this many extra DRAM round
/// trips on the block's critical path (§V-B).
pub const BASIC_INDEX_FETCH_ROUND_TRIPS: f64 = 3.0;

/// Without index/data separation the basic design buffers the index
/// block in BRAM and pays this many DRAM round trips per flushed block.
pub const BASIC_INDEX_FLUSH_ROUND_TRIPS: f64 = 2.0;

// ---------------------------------------------------------------------
// Table V, CPU column: the calibrated LevelDB v1.1 baseline fit.
// ---------------------------------------------------------------------

/// Fixed per-pair cost in microseconds (iterator dispatch, allocator,
/// block-builder bookkeeping in 2019-era LevelDB).
pub const C_FIX_US: f64 = 10.0;

/// Cost per internal-key byte in microseconds (heap compares).
pub const C_KEY_US_PER_BYTE: f64 = 0.125;

/// Cost per value byte in microseconds (copies + snappy en/decode).
pub const C_VALUE_US_PER_BYTE: f64 = 0.056;

/// Additional cost per value byte beyond [`CACHE_THRESHOLD_BYTES`]
/// (cache-miss penalty; the paper's CPU speed visibly drops at 2 KiB
/// values).
pub const C_CACHE_US_PER_BYTE: f64 = 0.027;

/// Cache penalty threshold.
pub const CACHE_THRESHOLD_BYTES: usize = 1024;

/// Per-entry cost of each merge input beyond two (LevelDB's
/// `MergingIterator` linear child scan + virtual calls).
pub const C_CHILD_US: f64 = 0.8;
