//! FCAE — the paper's **F**PGA-based **C**ompaction **A**cceleration
//! **E**ngine, reproduced as a functional simulator with cycle-accurate
//! timing, resource, and transfer models.
//!
//! The engine really performs the compaction: it decodes LevelDB data
//! blocks (Snappy + prefix compression), runs an N-way compare with
//! validity checking, and encodes standard output SSTables — the same
//! bytes a hardware engine DMA'd back to the host would contain. Alongside
//! the functional path, [`timing::PipelineModel`] charges every module the
//! cycle counts of the paper's Tables II/III, so kernel time (and hence
//! "compaction speed", the paper's §VII-B metric) is derived from the
//! pipeline structure rather than from host wall-clock.
//!
//! Module map (paper §V, Fig. 5):
//!
//! | Paper module | Here |
//! |---|---|
//! | Index Block Decoder / Data Block Decoder | [`decoder::InputDecoder`] |
//! | Key Compare + Validity Check (Comparer) | [`comparer::Comparer`] |
//! | Key-Value Transfer | folded into [`engine::FcaeEngine`]'s select loop |
//! | Data/Index Block Encoder | [`encoder::OutputEncoder`] |
//! | Stream Downsizer / Upsizer, AXI | width terms in [`timing::PipelineModel`] |
//! | MetaIn/MetaOut + block memories (Fig. 7/8) | [`memory`] |
//! | Resource usage (Table VII) | [`resources::ResourceModel`] |
//! | CPU baseline (Table V, CPU column) | [`cpu_model::CpuCostModel`] |

pub mod basic_decoder;
pub mod comparer;
pub mod config;
pub mod cpu_model;
pub mod decoder;
pub mod encoder;
pub mod engine;
pub mod memory;
pub mod meta_wire;
pub mod paper_tables;
pub mod resources;
pub mod timing;

pub use config::{AblationFlags, FcaeConfig, PcieConfig};
pub use cpu_model::CpuCostModel;
pub use engine::{FcaeEngine, KernelReport};
pub use resources::{ResourceModel, Utilization};
pub use timing::{ModuleBreakdown, PipelineModel};

/// Engine errors are the store's errors: the engine is a drop-in
/// [`lsm::CompactionEngine`].
pub type Result<T> = lsm::Result<T>;
