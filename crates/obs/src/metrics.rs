//! Lock-cheap metric primitives.
//!
//! All three metric kinds are plain relaxed atomics: recording is a
//! handful of `fetch_add`s with no locking, so they are safe to update
//! from hot paths (per-get latency, per-block cache probes). Snapshots
//! are *not* atomic across fields — they are observability reads, not
//! linearizable state.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter {
    value: AtomicU64,
}

impl Counter {
    /// A counter at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Last-write-wins instantaneous value, with a high-watermark helper.
#[derive(Debug, Default)]
pub struct Gauge {
    value: AtomicU64,
}

impl Gauge {
    /// A gauge at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the value.
    pub fn set(&self, v: u64) {
        self.value.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is larger (high-watermark gauges).
    pub fn set_max(&self, v: u64) {
        self.value.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

/// Number of power-of-two buckets: bucket `i` holds values whose bit
/// length is `i`, i.e. bucket 0 is exactly `{0}` and bucket `i >= 1`
/// covers `[2^(i-1), 2^i - 1]`. 65 buckets span the full `u64` range.
const BUCKETS: usize = 65;

/// Fixed-bucket histogram over `u64` samples (latencies in micros,
/// batch sizes, byte counts...). Power-of-two buckets keep recording at
/// one `leading_zeros` plus a few relaxed `fetch_add`s, and quantiles
/// are estimated by linear interpolation inside the target bucket.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Point-in-time summary of a [`Histogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HistogramSnapshot {
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
    pub p50: u64,
    pub p95: u64,
    pub p99: u64,
}

impl HistogramSnapshot {
    /// Mean sample value, rounded down; zero when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    fn bucket_index(v: u64) -> usize {
        (u64::BITS - v.leading_zeros()) as usize
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        self.buckets[Self::bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Total number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples.
    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    /// Summarizes the current contents, including p50/p95/p99.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut counts = [0u64; BUCKETS];
        for (slot, bucket) in counts.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
        }
        let count: u64 = counts.iter().sum();
        if count == 0 {
            return HistogramSnapshot::default();
        }
        let min = self.min.load(Ordering::Relaxed);
        let max = self.max.load(Ordering::Relaxed);
        let q = |quantile_num: u64, quantile_den: u64| -> u64 {
            // 1-based rank of the requested quantile, rounded up
            // (widened so huge counts cannot overflow the product).
            let rank = ((count as u128 * quantile_num as u128).div_ceil(quantile_den as u128)
                as u64)
                .max(1);
            let mut seen = 0u64;
            for (i, &c) in counts.iter().enumerate() {
                if c == 0 {
                    continue;
                }
                if seen + c >= rank {
                    // Interpolate linearly inside bucket i, clamped to
                    // the observed min/max so sparse histograms do not
                    // report impossible values.
                    let lo = if i == 0 { 0 } else { 1u64 << (i - 1) };
                    let hi = if i == 0 {
                        0
                    } else if i >= 64 {
                        u64::MAX
                    } else {
                        (1u64 << i) - 1
                    };
                    let into = rank - seen; // 1..=c
                    let est = lo + ((hi - lo) / c).saturating_mul(into);
                    return est.clamp(min, max);
                }
                seen += c;
            }
            max
        };
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min,
            max,
            p50: q(50, 100),
            p95: q(95, 100),
            p99: q(99, 100),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        let g = Gauge::new();
        g.set(7);
        g.set_max(3); // lower: ignored
        assert_eq!(g.get(), 7);
        g.set_max(11);
        assert_eq!(g.get(), 11);
    }

    #[test]
    fn histogram_empty() {
        let h = Histogram::new();
        assert_eq!(h.snapshot(), HistogramSnapshot::default());
    }

    #[test]
    fn histogram_single_value() {
        let h = Histogram::new();
        h.record(42);
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 42);
        assert_eq!(s.min, 42);
        assert_eq!(s.max, 42);
        assert_eq!(s.p50, 42);
        assert_eq!(s.p99, 42);
    }

    #[test]
    fn histogram_quantiles_are_ordered_and_bounded() {
        let h = Histogram::new();
        for v in 1..=1000u64 {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 1000);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 1000);
        assert!(s.p50 <= s.p95 && s.p95 <= s.p99);
        assert!(s.p50 >= s.min && s.p99 <= s.max);
        // p50 of uniform 1..=1000 lives in bucket [512, 1000]; the
        // bucket estimate is coarse but must land in a sane band.
        assert!(s.p50 >= 256 && s.p50 <= 768, "p50={}", s.p50);
        assert!(s.p99 >= 512, "p99={}", s.p99);
    }

    #[test]
    fn histogram_zero_and_extremes() {
        let h = Histogram::new();
        h.record(0);
        h.record(u64::MAX);
        let s = h.snapshot();
        assert_eq!(s.min, 0);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.p50, 0);
        assert_eq!(s.p99, u64::MAX);
    }

    #[test]
    fn snapshot_mean() {
        let h = Histogram::new();
        h.record(10);
        h.record(20);
        assert_eq!(h.snapshot().mean(), 15);
        assert_eq!(HistogramSnapshot::default().mean(), 0);
    }
}
