//! Workspace observability layer.
//!
//! The paper's whole evaluation (§VII) is measurement: per-level
//! compaction traffic, stall time, kernel throughput, per-stage
//! breakdowns. This crate is the substrate those numbers flow through:
//!
//! * [`Registry`] — a named collection of [`Counter`]s, [`Gauge`]s and
//!   fixed-bucket [`Histogram`]s (p50/p95/p99). Handles are `Arc`s over
//!   relaxed atomics, so hot paths record without locks; the registry
//!   mutex is touched only at registration and export time.
//! * [`TraceBuffer`] — a bounded ring of structured [`Event`]s
//!   (compaction start/finish, flush, write stall, engine
//!   dispatch/fault/fallback, cache eviction, quarantine failure).
//! * [`Clock`] — time injection. Live processes use [`WallClock`];
//!   simulators drive a [`ManualClock`] from modeled time so two
//!   identical runs export byte-identical metrics and traces.
//!
//! Export is deterministic by construction: names iterate in `BTreeMap`
//! order and all numbers are integers.

pub mod clock;
pub mod json;
pub mod metrics;
pub mod trace;

pub use clock::{Clock, ManualClock, WallClock};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot};
pub use trace::{Event, EventKind, TraceBuffer};

use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Arc;

use parking_lot::Mutex;

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, Arc<Counter>>,
    gauges: BTreeMap<String, Arc<Gauge>>,
    histograms: BTreeMap<String, Arc<Histogram>>,
}

/// Named metric registry.
///
/// `counter`/`gauge`/`histogram` get-or-create: the first caller
/// registers the metric, later callers receive the same handle, so
/// independent subsystems can share one registry without coordination.
#[derive(Default)]
pub struct Registry {
    inner: Mutex<RegistryInner>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// The counter named `name`, creating it on first use.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut inner = self.inner.lock();
        if let Some(c) = inner.counters.get(name) {
            return c.clone();
        }
        let c = Arc::new(Counter::new());
        inner.counters.insert(name.to_string(), c.clone());
        c
    }

    /// The gauge named `name`, creating it on first use.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut inner = self.inner.lock();
        if let Some(g) = inner.gauges.get(name) {
            return g.clone();
        }
        let g = Arc::new(Gauge::new());
        inner.gauges.insert(name.to_string(), g.clone());
        g
    }

    /// The histogram named `name`, creating it on first use.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut inner = self.inner.lock();
        if let Some(h) = inner.histograms.get(name) {
            return h.clone();
        }
        let h = Arc::new(Histogram::new());
        inner.histograms.insert(name.to_string(), h.clone());
        h
    }

    /// Value of `name` if a counter with that name exists.
    pub fn counter_value(&self, name: &str) -> Option<u64> {
        self.inner.lock().counters.get(name).map(|c| c.get())
    }

    /// Snapshot of `name` if a histogram with that name exists.
    pub fn histogram_snapshot(&self, name: &str) -> Option<HistogramSnapshot> {
        self.inner.lock().histograms.get(name).map(|h| h.snapshot())
    }

    /// Plain-text export: one line per metric, sorted by kind then
    /// name. Byte-stable for identical metric contents.
    pub fn export_text(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::new();
        for (name, c) in &inner.counters {
            let _ = writeln!(out, "counter {name} {}", c.get());
        }
        for (name, g) in &inner.gauges {
            let _ = writeln!(out, "gauge {name} {}", g.get());
        }
        for (name, h) in &inner.histograms {
            let s = h.snapshot();
            let _ = writeln!(
                out,
                "hist {name} count={} sum={} min={} max={} mean={} p50={} p95={} p99={}",
                s.count,
                s.sum,
                if s.count == 0 { 0 } else { s.min },
                s.max,
                s.mean(),
                s.p50,
                s.p95,
                s.p99
            );
        }
        out
    }

    /// JSON export with the same deterministic ordering as
    /// [`Registry::export_text`]. Built by hand — the workspace is
    /// offline and carries no serde.
    pub fn export_json(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::from("{\"counters\":{");
        for (i, (name, c)) in inner.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(name), c.get());
        }
        out.push_str("},\"gauges\":{");
        for (i, (name, g)) in inner.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "{}:{}", json_string(name), g.get());
        }
        out.push_str("},\"histograms\":{");
        for (i, (name, h)) in inner.histograms.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let s = h.snapshot();
            let _ = write!(
                out,
                "{}:{{\"count\":{},\"sum\":{},\"min\":{},\"max\":{},\"mean\":{},\
                 \"p50\":{},\"p95\":{},\"p99\":{}}}",
                json_string(name),
                s.count,
                s.sum,
                if s.count == 0 { 0 } else { s.min },
                s.max,
                s.mean(),
                s.p50,
                s.p95,
                s.p99
            );
        }
        out.push_str("}}");
        out
    }
}

/// The bundle subsystems share: one registry, one trace, one clock.
///
/// Constructed once per process (or per simulated system) and threaded
/// through `Options`-style structs as `Arc<Obs>`. The trace buffer
/// stamps events with `clock`, so handing a [`ManualClock`] to
/// [`Obs::with_clock`] makes every export deterministic.
pub struct Obs {
    pub registry: Arc<Registry>,
    pub trace: Arc<TraceBuffer>,
    clock: Arc<dyn Clock>,
}

impl Obs {
    /// Default trace capacity used by the convenience constructors.
    pub const DEFAULT_TRACE_CAPACITY: usize = 4096;

    /// An observability bundle stamping events with `clock`.
    pub fn with_clock(trace_capacity: usize, clock: Arc<dyn Clock>) -> Arc<Self> {
        Arc::new(Obs {
            registry: Arc::new(Registry::new()),
            trace: Arc::new(TraceBuffer::new(trace_capacity, clock.clone())),
            clock,
        })
    }

    /// A wall-clock bundle for live processes.
    pub fn wall() -> Arc<Self> {
        Self::with_clock(Self::DEFAULT_TRACE_CAPACITY, Arc::new(WallClock::new()))
    }

    /// A deterministic bundle plus the [`ManualClock`] that drives it.
    pub fn manual() -> (Arc<Self>, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let obs = Self::with_clock(Self::DEFAULT_TRACE_CAPACITY, clock.clone());
        (obs, clock)
    }

    /// The clock shared by the trace buffer and latency measurements.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Microseconds now, per the bundle's clock.
    pub fn now_micros(&self) -> u64 {
        self.clock.now_micros()
    }

    /// Records a trace event.
    pub fn event(&self, kind: EventKind) {
        self.trace.record(kind);
    }

    /// Registry text export followed by the trace export.
    pub fn export_text(&self) -> String {
        let mut out = self.registry.export_text();
        out.push_str(&self.trace.export_text());
        out
    }
}

/// Quotes and escapes `s` as a JSON string literal.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_get_or_create_shares_handles() {
        let r = Registry::new();
        let a = r.counter("x");
        let b = r.counter("x");
        a.add(3);
        assert_eq!(b.get(), 3);
        assert_eq!(r.counter_value("x"), Some(3));
        assert_eq!(r.counter_value("missing"), None);
    }

    #[test]
    fn export_text_is_sorted_and_stable() {
        let r = Registry::new();
        r.counter("z.last").add(2);
        r.counter("a.first").inc();
        r.gauge("g.max").set_max(5);
        r.histogram("h.lat").record(100);
        let text = r.export_text();
        let a_pos = text.find("a.first").unwrap();
        let z_pos = text.find("z.last").unwrap();
        assert!(a_pos < z_pos);
        assert_eq!(text, r.export_text());
        assert!(text.contains("counter a.first 1"));
        assert!(text.contains("gauge g.max 5"));
        assert!(text.contains("p99=100"));
    }

    #[test]
    fn export_json_shape() {
        let r = Registry::new();
        r.counter("c").inc();
        r.histogram("h").record(7);
        let json = r.export_json();
        assert!(json.starts_with("{\"counters\":{"));
        assert!(json.contains("\"c\":1"));
        assert!(json.contains("\"h\":{\"count\":1,\"sum\":7"));
        assert!(json.ends_with("}}"));
        assert_eq!(json, r.export_json());
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_string("a\"b\\c\n"), "\"a\\\"b\\\\c\\n\"");
    }

    /// Serde-style round trip: every exported name — including the
    /// LevelDB-inherited `lsm.num-files-at-level<N>` spelling with
    /// literal angle brackets, plus quotes, backslashes and control
    /// characters — must survive `export_json` → parse → lookup.
    #[test]
    fn export_json_round_trips_through_parser() {
        let r = Registry::new();
        let hostile = [
            "lsm.num-files-at-level<0>",
            "lsm.num-files-at-level<6>",
            "name with \"quotes\"",
            "back\\slash",
            "tab\there",
            "new\nline",
            "ctrl\u{1}char",
            "unicode-μs",
        ];
        for (i, name) in hostile.iter().enumerate() {
            r.counter(name).add(i as u64 + 1);
            r.gauge(name).set(i as u64 * 10);
        }
        r.histogram("h<angle>").record(123);
        r.counter("big").add(u64::MAX);

        let doc = json::parse(&r.export_json()).expect("export must be valid JSON");
        let counters = doc.get("counters").expect("counters object");
        for (i, name) in hostile.iter().enumerate() {
            assert_eq!(
                counters.get(name).and_then(json::Value::as_u64),
                Some(i as u64 + 1),
                "counter {name:?} must round-trip"
            );
            assert_eq!(
                doc.get("gauges")
                    .and_then(|g| g.get(name))
                    .and_then(json::Value::as_u64),
                Some(i as u64 * 10),
                "gauge {name:?} must round-trip"
            );
        }
        assert_eq!(
            counters.get("big").and_then(json::Value::as_u64),
            Some(u64::MAX)
        );
        let h = doc
            .get("histograms")
            .and_then(|h| h.get("h<angle>"))
            .expect("histogram with angle brackets");
        assert_eq!(h.get("count").and_then(json::Value::as_u64), Some(1));
        assert_eq!(h.get("sum").and_then(json::Value::as_u64), Some(123));
    }
}
