//! Minimal JSON parser used to *validate* the registry's hand-rolled
//! exports (the workspace is offline and carries no serde).
//!
//! Scope: full JSON syntax — objects, arrays, strings with every escape
//! form, numbers, booleans, null — with two deliberate properties:
//!
//! * **Panic-free on arbitrary input.** Every byte access is bounds
//!   checked and nesting depth is capped, so garbage input yields a
//!   [`ParseError`], never a crash. This keeps the crate inside the
//!   xtask no-panics lint scope and lets property tests feed it
//!   adversarial frames.
//! * **Integer-exact.** Numbers without fraction/exponent parse into
//!   `u64`/`i64` (metric exports are all integers, some potentially
//!   above 2^53 where `f64` loses precision); only fractional or
//!   exponent forms fall back to `f64`.

use std::collections::BTreeMap;
use std::fmt;

/// Maximum nesting depth accepted before parsing fails; bounds stack
/// use on adversarial input like ten thousand `[`s.
const MAX_DEPTH: usize = 128;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number; see [`Number`] for exactness rules.
    Number(Number),
    /// A string, with escapes decoded.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. `BTreeMap` matches the registry's deterministic key
    /// ordering; duplicate keys keep the last occurrence.
    Object(BTreeMap<String, Value>),
}

/// A JSON number, kept integer-exact where the text allows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Number {
    /// Non-negative integer without fraction/exponent.
    UInt(u64),
    /// Negative integer without fraction/exponent.
    Int(i64),
    /// Anything with a fraction or exponent (or magnitude overflow).
    Float(f64),
}

impl Value {
    /// Object member lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Object(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as `u64` if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::UInt(v)) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The object's key/value map if it is an object.
    pub fn as_object(&self) -> Option<&BTreeMap<String, Value>> {
        match self {
            Value::Object(map) => Some(map),
            _ => None,
        }
    }
}

/// Parse failure: byte offset plus a static description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What was wrong.
    pub message: &'static str,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

/// Parses `input` as a single JSON document (trailing whitespace
/// allowed, trailing garbage rejected).
pub fn parse(input: &str) -> Result<Value, ParseError> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing data after document"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &'static str) -> ParseError {
        ParseError {
            offset: self.pos,
            message,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, b: u8, message: &'static str) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(message))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Value, ParseError> {
        if depth > MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal(b"true", Value::Bool(true)),
            Some(b'f') => self.literal(b"false", Value::Bool(false)),
            Some(b'n') => self.literal(b"null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            Some(_) => Err(self.err("unexpected byte at value start")),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, word: &'static [u8], v: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn object(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'{', "expected '{'")?;
        let mut map = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':', "expected ':' after object key")?;
            self.skip_ws();
            let val = self.value(depth + 1)?;
            map.insert(key, val);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Value, ParseError> {
        self.eat(b'[', "expected '['")?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => {}
                Some(b']') => return Ok(Value::Array(items)),
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.eat(b'"', "expected '\"'")?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes up to the next quote/escape.
            while let Some(b) = self.peek() {
                if b == b'"' || b == b'\\' || b < 0x20 {
                    break;
                }
                self.pos += 1;
            }
            if self.pos > start {
                // The input is a &str, but the run boundary is always at
                // an ASCII byte, so the slice stays on char boundaries.
                match std::str::from_utf8(&self.bytes[start..self.pos]) {
                    Ok(s) => out.push_str(s),
                    Err(_) => return Err(self.err("invalid utf-8 in string")),
                }
            }
            match self.bump() {
                Some(b'"') => return Ok(out),
                Some(b'\\') => self.escape(&mut out)?,
                Some(_) => return Err(self.err("unescaped control character in string")),
                None => return Err(self.err("unterminated string")),
            }
        }
    }

    fn escape(&mut self, out: &mut String) -> Result<(), ParseError> {
        match self.bump() {
            Some(b'"') => out.push('"'),
            Some(b'\\') => out.push('\\'),
            Some(b'/') => out.push('/'),
            Some(b'b') => out.push('\u{0008}'),
            Some(b'f') => out.push('\u{000c}'),
            Some(b'n') => out.push('\n'),
            Some(b'r') => out.push('\r'),
            Some(b't') => out.push('\t'),
            Some(b'u') => {
                let hi = self.hex4()?;
                let ch = if (0xD800..0xDC00).contains(&hi) {
                    // High surrogate: require a following \uXXXX low half.
                    if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                        return Err(self.err("unpaired surrogate escape"));
                    }
                    let lo = self.hex4()?;
                    if !(0xDC00..0xE000).contains(&lo) {
                        return Err(self.err("invalid low surrogate"));
                    }
                    let c = 0x10000 + ((hi - 0xD800) << 10) + (lo - 0xDC00);
                    char::from_u32(c).ok_or_else(|| self.err("invalid surrogate pair"))?
                } else if (0xDC00..0xE000).contains(&hi) {
                    return Err(self.err("lone low surrogate"));
                } else {
                    char::from_u32(hi).ok_or_else(|| self.err("invalid \\u escape"))?
                };
                out.push(ch);
            }
            _ => return Err(self.err("invalid escape character")),
        }
        Ok(())
    }

    fn hex4(&mut self) -> Result<u32, ParseError> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(b @ b'0'..=b'9') => u32::from(b - b'0'),
                Some(b @ b'a'..=b'f') => u32::from(b - b'a') + 10,
                Some(b @ b'A'..=b'F') => u32::from(b - b'A') + 10,
                _ => return Err(self.err("invalid hex digit in \\u escape")),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        let negative = self.peek() == Some(b'-');
        if negative {
            self.pos += 1;
        }
        // Integer part: one digit, or a nonzero digit followed by more.
        match self.peek() {
            Some(b'0') => self.pos += 1,
            Some(b'1'..=b'9') => {
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
            }
            _ => return Err(self.err("invalid number")),
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.pos += 1;
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required after decimal point"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            if !matches!(self.peek(), Some(b'0'..=b'9')) {
                return Err(self.err("digit required in exponent"));
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        // The scanned range is ASCII digits/sign/dot/exponent only.
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        let num = if integral && !negative {
            match text.parse::<u64>() {
                Ok(v) => Number::UInt(v),
                Err(_) => Number::Float(text.parse().unwrap_or(f64::INFINITY)),
            }
        } else if integral {
            match text.parse::<i64>() {
                Ok(v) => Number::Int(v),
                Err(_) => Number::Float(text.parse().unwrap_or(f64::NEG_INFINITY)),
            }
        } else {
            Number::Float(text.parse().unwrap_or(0.0))
        };
        Ok(Value::Number(num))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_scalars() {
        assert_eq!(parse("null"), Ok(Value::Null));
        assert_eq!(parse(" true "), Ok(Value::Bool(true)));
        assert_eq!(parse("false"), Ok(Value::Bool(false)));
        assert_eq!(parse("42"), Ok(Value::Number(Number::UInt(42))));
        assert_eq!(parse("-7"), Ok(Value::Number(Number::Int(-7))));
        assert_eq!(parse("1.5"), Ok(Value::Number(Number::Float(1.5))));
        assert_eq!(parse("2e3"), Ok(Value::Number(Number::Float(2000.0))));
        assert_eq!(
            parse(&u64::MAX.to_string()),
            Ok(Value::Number(Number::UInt(u64::MAX)))
        );
    }

    #[test]
    fn parses_strings_with_escapes() {
        assert_eq!(parse(r#""a<b>c""#).unwrap().as_str(), Some("a<b>c"));
        assert_eq!(parse(r#""q\"w\\e\n""#).unwrap().as_str(), Some("q\"w\\e\n"));
        assert_eq!(parse(r#""\u0041""#).unwrap().as_str(), Some("A"));
        assert_eq!(parse(r#""\ud83d\ude00""#).unwrap().as_str(), Some("😀"));
        assert_eq!(parse("\"héllo\"").unwrap().as_str(), Some("héllo"));
    }

    #[test]
    fn parses_nested_structures() {
        let v = parse(r#"{"a":{"b":[1,2,{"c":null}]},"d":true}"#).unwrap();
        let b = v.get("a").and_then(|a| a.get("b")).unwrap();
        match b {
            Value::Array(items) => assert_eq!(items.len(), 3),
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn rejects_garbage_without_panicking() {
        for bad in [
            "",
            "{",
            "}",
            "[",
            "]",
            "{\"a\"}",
            "{\"a\":}",
            "{,}",
            "[1,]",
            "\"unterminated",
            "01",
            "1.",
            "1e",
            "tru",
            "nul",
            "--1",
            "+1",
            "\"\\x\"",
            "\"\\u12\"",
            "\"\\ud800\"",
            "\"\\udc00\"",
            "{}extra",
            "\u{0}",
            "\"\u{1}\"",
        ] {
            assert!(parse(bad).is_err(), "should reject {bad:?}");
        }
    }

    #[test]
    fn depth_limit_holds() {
        let deep: String = "[".repeat(100_000);
        assert!(parse(&deep).is_err());
        let ok = format!("{}{}", "[".repeat(64), "]".repeat(64));
        assert!(parse(&ok).is_ok());
    }

    #[test]
    fn duplicate_keys_keep_last() {
        let v = parse(r#"{"k":1,"k":2}"#).unwrap();
        assert_eq!(v.get("k").and_then(Value::as_u64), Some(2));
    }
}
