//! Structured event trace.
//!
//! A bounded ring buffer of timestamped events covering the lifecycle
//! moments the paper's evaluation reasons about: compactions, flushes,
//! write stalls, offload-engine dispatch/fault/fallback, cache
//! evictions, and repair quarantines. Timestamps come from the injected
//! [`Clock`], so simulated runs emit byte-identical traces.

use std::collections::VecDeque;
use std::fmt;
use std::sync::Arc;

use parking_lot::Mutex;

use crate::clock::Clock;

/// What happened. Field names are part of the exported text format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventKind {
    /// A compaction was picked and started executing.
    CompactionStart {
        level: usize,
        files: usize,
        bytes: u64,
    },
    /// A compaction finished (successfully) into `level + 1`.
    CompactionFinish {
        level: usize,
        bytes_read: u64,
        bytes_written: u64,
        micros: u64,
    },
    /// An immutable memtable was flushed to a level-0 table.
    Flush { bytes: u64, micros: u64 },
    /// A writer was stalled (slowdown or stop trigger) for `micros`.
    WriteStall { micros: u64 },
    /// The offload scheduler handed a job to an engine.
    EngineDispatch {
        job: u64,
        engine: &'static str,
        bytes: u64,
    },
    /// A device engine faulted while running a job.
    EngineFault { job: u64 },
    /// A job bypassed (or was retried off) the device onto the CPU.
    EngineFallback { job: u64, reason: &'static str },
    /// A dead file's blocks were purged from the block cache.
    CacheEviction { file_number: u64, bytes: u64 },
    /// `repair_db` failed to move a corrupt table into `lost/`.
    QuarantineFailure { path: String },
    /// A background write failure moved the store read-only (sticky).
    BgError { message: String },
    /// A transient compaction I/O error is being retried with backoff.
    CompactionRetry {
        level: usize,
        attempt: u32,
        backoff_micros: u64,
    },
}

impl EventKind {
    /// Stable lowercase name used by the text export.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::CompactionStart { .. } => "compaction_start",
            EventKind::CompactionFinish { .. } => "compaction_finish",
            EventKind::Flush { .. } => "flush",
            EventKind::WriteStall { .. } => "write_stall",
            EventKind::EngineDispatch { .. } => "engine_dispatch",
            EventKind::EngineFault { .. } => "engine_fault",
            EventKind::EngineFallback { .. } => "engine_fallback",
            EventKind::CacheEviction { .. } => "cache_eviction",
            EventKind::QuarantineFailure { .. } => "quarantine_failure",
            EventKind::BgError { .. } => "bg_error",
            EventKind::CompactionRetry { .. } => "compaction_retry",
        }
    }
}

impl fmt::Display for EventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EventKind::CompactionStart {
                level,
                files,
                bytes,
            } => {
                write!(
                    f,
                    "compaction_start level={level} files={files} bytes={bytes}"
                )
            }
            EventKind::CompactionFinish {
                level,
                bytes_read,
                bytes_written,
                micros,
            } => write!(
                f,
                "compaction_finish level={level} bytes_read={bytes_read} \
                 bytes_written={bytes_written} micros={micros}"
            ),
            EventKind::Flush { bytes, micros } => {
                write!(f, "flush bytes={bytes} micros={micros}")
            }
            EventKind::WriteStall { micros } => write!(f, "write_stall micros={micros}"),
            EventKind::EngineDispatch { job, engine, bytes } => {
                write!(f, "engine_dispatch job={job} engine={engine} bytes={bytes}")
            }
            EventKind::EngineFault { job } => write!(f, "engine_fault job={job}"),
            EventKind::EngineFallback { job, reason } => {
                write!(f, "engine_fallback job={job} reason={reason}")
            }
            EventKind::CacheEviction { file_number, bytes } => {
                write!(f, "cache_eviction file={file_number} bytes={bytes}")
            }
            EventKind::QuarantineFailure { path } => {
                write!(f, "quarantine_failure path={path}")
            }
            EventKind::BgError { message } => write!(f, "bg_error message={message}"),
            EventKind::CompactionRetry {
                level,
                attempt,
                backoff_micros,
            } => write!(
                f,
                "compaction_retry level={level} attempt={attempt} backoff_micros={backoff_micros}"
            ),
        }
    }
}

/// One recorded event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Event {
    /// Monotonic sequence number (never reused, survives ring wrap).
    pub seq: u64,
    /// Timestamp from the buffer's clock.
    pub at_micros: u64,
    pub kind: EventKind,
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{:06} {:>10}us {}", self.seq, self.at_micros, self.kind)
    }
}

struct TraceInner {
    events: VecDeque<Event>,
    next_seq: u64,
    dropped: u64,
}

/// Bounded ring buffer of [`Event`]s.
///
/// Recording is one short mutex hold (push + possible pop); the buffer
/// never allocates past its capacity. When full, the oldest event is
/// dropped and counted.
pub struct TraceBuffer {
    clock: Arc<dyn Clock>,
    capacity: usize,
    inner: Mutex<TraceInner>,
}

impl TraceBuffer {
    /// A buffer holding at most `capacity` events (minimum 1).
    pub fn new(capacity: usize, clock: Arc<dyn Clock>) -> Self {
        let capacity = capacity.max(1);
        Self {
            clock,
            capacity,
            inner: Mutex::new(TraceInner {
                events: VecDeque::with_capacity(capacity),
                next_seq: 0,
                dropped: 0,
            }),
        }
    }

    /// Records `kind` at the clock's current time.
    pub fn record(&self, kind: EventKind) {
        let at_micros = self.clock.now_micros();
        let mut inner = self.inner.lock();
        let seq = inner.next_seq;
        inner.next_seq += 1;
        if inner.events.len() == self.capacity {
            inner.events.pop_front();
            inner.dropped += 1;
        }
        inner.events.push_back(Event {
            seq,
            at_micros,
            kind,
        });
    }

    /// The clock this buffer stamps events with.
    pub fn clock(&self) -> &Arc<dyn Clock> {
        &self.clock
    }

    /// Copies out the currently buffered events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.inner.lock().events.iter().cloned().collect()
    }

    /// Number of events currently buffered.
    pub fn len(&self) -> usize {
        self.inner.lock().events.len()
    }

    /// True when nothing has been buffered (or everything wrapped out).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events discarded because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.inner.lock().dropped
    }

    /// One line per buffered event, plus a trailer counting drops.
    /// Byte-stable for a given event sequence and clock.
    pub fn export_text(&self) -> String {
        let inner = self.inner.lock();
        let mut out = String::new();
        for ev in &inner.events {
            out.push_str(&ev.to_string());
            out.push('\n');
        }
        out.push_str(&format!(
            "trace: {} buffered, {} dropped\n",
            inner.events.len(),
            inner.dropped
        ));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn buffer(cap: usize) -> (Arc<ManualClock>, TraceBuffer) {
        let clock = Arc::new(ManualClock::new());
        let buf = TraceBuffer::new(cap, clock.clone());
        (clock, buf)
    }

    #[test]
    fn records_with_clock_timestamps() {
        let (clock, buf) = buffer(8);
        buf.record(EventKind::Flush {
            bytes: 10,
            micros: 2,
        });
        clock.advance(500);
        buf.record(EventKind::WriteStall { micros: 7 });
        let evs = buf.snapshot();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].at_micros, 0);
        assert_eq!(evs[1].at_micros, 500);
        assert_eq!(evs[0].seq, 0);
        assert_eq!(evs[1].seq, 1);
    }

    #[test]
    fn ring_wraps_and_counts_drops() {
        let (_clock, buf) = buffer(2);
        for i in 0..5 {
            buf.record(EventKind::EngineFault { job: i });
        }
        assert_eq!(buf.len(), 2);
        assert_eq!(buf.dropped(), 3);
        let evs = buf.snapshot();
        assert_eq!(evs[0].seq, 3);
        assert_eq!(evs[1].seq, 4);
    }

    #[test]
    fn export_is_deterministic_for_same_inputs() {
        let run = || {
            let (clock, buf) = buffer(16);
            buf.record(EventKind::CompactionStart {
                level: 1,
                files: 4,
                bytes: 4096,
            });
            clock.set(123);
            buf.record(EventKind::CompactionFinish {
                level: 1,
                bytes_read: 4096,
                bytes_written: 4000,
                micros: 123,
            });
            buf.record(EventKind::CacheEviction {
                file_number: 9,
                bytes: 512,
            });
            buf.export_text()
        };
        let a = run();
        assert_eq!(a, run());
        assert!(a.contains("compaction_start level=1 files=4 bytes=4096"));
        assert!(a.contains("trace: 3 buffered, 0 dropped"));
    }
}
