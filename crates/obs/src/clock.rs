//! Injectable clocks.
//!
//! Every timestamp the observability layer records flows through the
//! [`Clock`] trait so that code running under `simkit` can substitute a
//! [`ManualClock`] driven by simulated time and produce byte-identical
//! traces across runs. [`WallClock`] is the single sanctioned wall-clock
//! read in this crate; nothing else may touch `std::time` (enforced by
//! `cargo xtask lint` and the crate-local `clippy.toml`).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A monotonic microsecond clock.
pub trait Clock: Send + Sync {
    /// Microseconds since an arbitrary (per-clock) origin.
    fn now_micros(&self) -> u64;
}

/// Deterministic clock advanced explicitly by the caller.
///
/// Simulators set it from modeled time (`set`); tests can `advance` it.
/// Two runs that perform the same sequence of updates observe the same
/// timestamps, which is what makes trace output reproducible.
#[derive(Debug, Default)]
pub struct ManualClock {
    micros: AtomicU64,
}

impl ManualClock {
    /// A clock starting at zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the current time; earlier values are ignored so the clock
    /// stays monotonic even if callers race.
    pub fn set(&self, micros: u64) {
        self.micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Advances the clock by `micros`.
    pub fn advance(&self, micros: u64) {
        self.micros.fetch_add(micros, Ordering::Relaxed);
    }
}

impl Clock for ManualClock {
    fn now_micros(&self) -> u64 {
        self.micros.load(Ordering::Relaxed)
    }
}

/// Real-time clock for live (non-simulated) processes.
///
/// Reports microseconds since construction, so exported timestamps are
/// small and relative rather than absolute wall time.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    origin: std::time::Instant,
}

impl WallClock {
    /// A clock whose origin is "now".
    #[allow(clippy::disallowed_methods)]
    pub fn new() -> Self {
        Self {
            // DETERMINISM-OK: WallClock is the one sanctioned wall-clock
            // source; simulated code injects ManualClock instead.
            origin: std::time::Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for WallClock {
    fn now_micros(&self) -> u64 {
        self.origin.elapsed().as_micros() as u64
    }
}

/// Convenience: a shared deterministic clock plus the trait object view.
pub fn manual() -> (Arc<ManualClock>, Arc<dyn Clock>) {
    let c = Arc::new(ManualClock::new());
    let dyn_c: Arc<dyn Clock> = c.clone();
    (c, dyn_c)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_is_monotonic() {
        let c = ManualClock::new();
        assert_eq!(c.now_micros(), 0);
        c.set(100);
        c.set(40); // ignored: earlier than current
        assert_eq!(c.now_micros(), 100);
        c.advance(5);
        assert_eq!(c.now_micros(), 105);
    }

    #[test]
    fn wall_clock_moves_forward() {
        let c = WallClock::new();
        let a = c.now_micros();
        let b = c.now_micros();
        assert!(b >= a);
    }
}
