// Lint fixture (not compiled): `hold-across-await` positive and
// negative cases. tests/analyze_fire.rs asserts violations by line
// number — keep the layout stable.

async fn bad_held_across(s: &S) {
    let g = s.m.lock();
    refresh(&g).await; // expected violation (line 7)
    use_one(&g);
}

async fn bad_inline_temporary(s: &S) {
    push(s.m.lock().val()).await; // expected violation (line 12)
}

async fn fine_dropped_before(s: &S) {
    let g = s.m.lock();
    drop(g);
    refresh_nothing().await; // fine: guard dropped first
}

async fn fine_scoped_out(s: &S) {
    {
        let g = s.m.lock();
        use_one(&g);
    }
    refresh_nothing().await; // fine: guard left scope
}

async fn waived_hold(s: &S) {
    let g = s.m.lock();
    // HOLD-OK: startup path, single task, the lock is uncontended.
    refresh(&g).await;
    use_one(&g);
}

#[cfg(test)]
mod tests {
    async fn tests_are_exempt(s: &super::S) {
        let g = s.m.lock();
        probe().await;
        use_one(&g);
    }
}
