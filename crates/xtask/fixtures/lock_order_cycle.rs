// Lint fixture (not compiled): `lock-order` cycle detection. Two
// functions acquire the same pair in opposite orders — the classic
// AB/BA deadlock — so the graph check reports both the rank inversion
// and the acquisition cycle. tests/analyze_fire.rs asserts both.

fn ab(s: &S) {
    let a = s.a.lock(); // LOCK-ORDER: cyc.a 10
    let b = s.b.lock(); // LOCK-ORDER: cyc.b 20
    use_both(&a, &b);
}

fn ba(s: &S) {
    let b = s.b.lock(); // LOCK-ORDER: cyc.b 20
    let a = s.a.lock(); // LOCK-ORDER: cyc.a 10 -- expected inversion + cycle (line 14)
    use_both(&b, &a);
}
