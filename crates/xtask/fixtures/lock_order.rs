// Lint fixture (not compiled): `lock-order` positive and negative cases.
// tests/analyze_fire.rs asserts violations by line number — keep the
// layout stable.

fn good_nesting(s: &S) {
    let a = s.a.lock(); // LOCK-ORDER: fix.a 10
    let b = s.b.lock(); // LOCK-ORDER: fix.b 20
    use_both(&a, &b);
}

fn missing_annotation(s: &S) {
    let g = s.a.lock(); // expected violation (line 12): unannotated
    use_one(&g);
}

fn malformed_annotation(s: &S) {
    let g = s.c.lock(); // LOCK-ORDER: fix.c ten -- expected violation (line 17)
    use_one(&g);
}

fn inversion(s: &S) {
    let d = s.d.lock(); // LOCK-ORDER: fix.d 40
    let c = s.c2.lock(); // LOCK-ORDER: fix.c2 30 -- expected inversion (line 23)
    use_both(&d, &c);
}

fn recursive(s: &S) {
    let a1 = s.a.lock(); // LOCK-ORDER: fix.a 10
    let a2 = s.a.lock(); // LOCK-ORDER: fix.a 10 -- expected recursion (line 29)
    use_both(&a1, &a2);
}

fn conflicting_rank(s: &S) {
    let a = s.a.lock(); // LOCK-ORDER: fix.a 15 -- expected rank conflict (line 34)
    use_one(&a);
}

fn waived(s: &S) {
    let g = s.a.lock(); // LOCK-ORDER-OK: generic helper; the caller names the lock.
    use_one(&g);
}

fn temporary_dies(s: &S) {
    let n = s.b.lock().len(); // LOCK-ORDER: fix.b 20
    let a = s.a.lock(); // LOCK-ORDER: fix.a 10 -- fine: the temporary died
    use_one(&a, n);
}

fn drop_releases(s: &S) {
    let b = s.b.lock(); // LOCK-ORDER: fix.b 20
    drop(b);
    let a = s.a.lock(); // LOCK-ORDER: fix.a 10 -- fine: b was dropped
    use_one(&a);
}

fn scope_releases(s: &S) {
    {
        let b = s.b.lock(); // LOCK-ORDER: fix.b 20
        use_one(&b);
    }
    let a = s.a.lock(); // LOCK-ORDER: fix.a 10 -- fine: b left scope
    use_one(&a);
}

// LOCK-HELD: fix.d via d_guard -- the caller passes its d guard down.
fn held_inversion(s: &S, d_guard: Guard) {
    let a = s.a.lock(); // LOCK-ORDER: fix.a 10 -- expected inversion (line 67)
    use_both(&a, &d_guard);
}

// LOCK-HELD: fix.d via d2 -- dropped before the lower-ranked lock.
fn held_drop_releases(s: &S, d2: Guard) {
    drop(d2);
    let a = s.a.lock(); // LOCK-ORDER: fix.a 10 -- fine: the held guard was dropped
    use_one(&a);
}

#[cfg(test)]
mod tests {
    fn tests_are_exempt(s: &super::S) {
        let g = s.a.lock(); // unannotated, but tests are exempt
        use_one(&g);
    }
}
