// Lint fixture (not compiled): `determinism` positive and negative
// cases. tests/lints_fire.rs asserts violations by line number — keep
// the layout stable.

use std::time::Instant;

fn bad_wall_clock() -> Instant {
    Instant::now() // expected violation (line 8)
}

fn bad_sleep() {
    std::thread::sleep(std::time::Duration::from_millis(1)); // expected violation (line 12)
}

fn waived_wall_clock() -> Instant {
    // DETERMINISM-OK: host-side measurement reported alongside modeled time.
    Instant::now()
}

fn modeled_time(cycles: u64, cycle_time_sec: f64) -> f64 {
    cycles as f64 * cycle_time_sec
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_time_themselves() {
        let _ = std::time::Instant::now();
    }
}
