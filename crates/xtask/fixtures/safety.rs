// Lint fixture (not compiled): `safety-comments` positive and negative
// cases. tests/lints_fire.rs asserts violations by line number — keep
// the layout stable.

fn bad() {
    let x = [1u8, 2];
    let _ = unsafe { *x.as_ptr() }; // expected violation (line 7)
}

fn good_trailing() {
    let x = [1u8, 2];
    let _ = unsafe { *x.as_ptr() }; // SAFETY: pointer derives from a live array.
}

fn good_block_above() {
    let x = [1u8, 2];
    // SAFETY: pointer derives from a live array; index 0 is in bounds.
    #[allow(unused)]
    let _ = unsafe { *x.as_ptr() };
}
