// Lint fixture (not compiled): `no-panics` positive and negative cases.
// tests/lints_fire.rs asserts violations by line number — keep the
// layout stable.

fn bad_unwrap(v: Option<u32>) -> u32 {
    v.unwrap() // expected violation (line 6)
}

fn bad_expect(v: Option<u32>) -> u32 {
    v.expect("value present") // expected violation (line 10)
}

fn bad_panic() {
    panic!("boom"); // expected violation (line 14)
}

fn fine_unwrap_or(v: Option<u32>) -> u32 {
    v.unwrap_or(0) // not the panicking form: fine
}

fn waived(v: &[u32]) -> u32 {
    // PANIC-OK: the slice is non-empty by the caller's contract.
    *v.first().unwrap()
}

fn waived_trailing(v: Option<u32>) -> u32 {
    v.unwrap() // PANIC-OK: caller guarantees Some by construction.
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap() {
        let v: Option<u32> = Some(1);
        assert_eq!(v.unwrap(), 1);
        let s = "7".parse::<u32>().expect("digit");
        assert_eq!(s, 7);
    }
}
