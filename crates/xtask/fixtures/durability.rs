// Lint fixture (not compiled): `durability-ordering` positive and
// negative cases. tests/analyze_fire.rs asserts violations by line
// number — keep the layout stable.

fn bad_unsynced_rename(env: &E, a: &P, b: &P) {
    env.rename(a, b); // expected violation (line 6)
}

fn good_sync_then_rename(env: &E, a: &P, b: &P) {
    env.sync_dir(a);
    env.rename(a, b); // fine: the payload sync precedes the install
}

fn bad_unsynced_create(env: &E, p: &P) {
    let w = env.create_writable(p); // expected violation (line 15)
    w.append(DATA);
}

fn good_synced_create(env: &E, p: &P) {
    let w = env.create_writable(p); // fine: synced before the fn returns
    w.append(DATA);
    w.sync();
}

fn waived_rename(env: &E, a: &P, b: &P) {
    // DURABILITY-OK: pass-through primitive; callers own the ordering.
    env.rename(a, b);
}

fn waived_create(env: &E, p: &P) -> W {
    env.create_writable(p) // DURABILITY-OK: the builder syncs at finish().
}

#[cfg(test)]
mod tests {
    fn tests_are_exempt(env: &super::E, a: &P, b: &P) {
        env.rename(a, b);
    }
}
