// Lint fixture (not compiled): `no-direct-fs` positive and negative
// cases. tests/lints_fire.rs asserts violations by line number — keep
// the layout stable.

use std::fs; // expected violation (line 5)

fn bad_read(path: &std::path::Path) -> String {
    std::fs::read_to_string(path).unwrap_or_default() // expected violation (line 8)
}

fn waived_block(path: &std::path::Path) {
    // FS-OK: emergency scrub path; never reached by store I/O.
    let _ = std::fs::remove_dir_all(path);
}

fn waived_trailing(path: &std::path::Path) {
    let _ = std::fs::remove_file(path); // FS-OK: tool-only cleanup.
}

fn fine_string_mention() -> &'static str {
    "std::fs" // inside a string literal: fine
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_touch_the_filesystem() {
        let _ = std::fs::read_to_string("/dev/null");
    }
}
