// Lint fixture (not compiled): `metrics-drift` registration cases.
// tests/analyze_fire.rs diffs these against fixtures/METRICS.md.

fn register(reg: &Registry, shard: usize) {
    let a = reg.counter("lsm.fixture.documented"); // fine: inventoried
    let b = reg.gauge("lsm.fixture.undocumented"); // expected violation (line 6)
    let c = reg.histogram(&format!("offload.shard{shard}.fixture")); // fine: normalized
    let d = reg.counter("lsm.fixture.wrong-kind"); // expected violation (inventory line 9)
    let e = reg.counter("sim.fixture.untracked"); // fine: prefix not inventoried
    use_all(a, b, c, d, e);
}

#[cfg(test)]
mod tests {
    fn tests_are_exempt(reg: &super::Registry) {
        let t = reg.counter("lsm.fixture.test-only"); // exempt
        use_one(t);
    }
}
