// Lint fixture (not compiled): `paper-constants` positive and negative
// cases. Lines are asserted by number in tests/lints_fire.rs.

const BAD_INLINE: f64 = 3.25; // line 4: numeric const outside paper_tables

pub use crate::paper_tables::GOOD_REEXPORT;

fn allowed_floats(x: f64) -> f64 {
    (x / 1e6).max(1.0) + 0.0 // allowlisted literals: fine
}

fn bad_magic(x: f64) -> f64 {
    x * 2.75 // line 13: magic float
}

// PAPER-CONST-OK: fixture demonstrating the waiver form.
const WAIVED: f64 = 9.81;

#[cfg(test)]
mod tests {
    const TEST_LOCAL: f64 = 123.456; // in tests: exempt

    #[test]
    fn t() {
        assert!(TEST_LOCAL > 2.5);
    }
}
