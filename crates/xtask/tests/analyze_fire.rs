//! Proof that each `cargo xtask analyze` lint is live: every fixture
//! under `fixtures/` violates its lint at known lines (and demonstrates
//! the waiver, temporary-guard, drop/scope-release, and test-exemption
//! forms, which must NOT fire). The final test runs the full analysis
//! over the real repo — the same gate `cargo xtask analyze` applies in
//! CI — so a regression in either the tree or the tracker fails
//! `cargo test`.

use std::path::{Path, PathBuf};

use xtask::{
    analyze_repo, collect_metric_defs, metrics_drift, parse_metrics_inventory, scan_durability,
    scan_hold_across_await, scan_lock_order, Violation,
};

fn fixture(name: &str) -> (PathBuf, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let source = std::fs::read_to_string(&path).expect("fixture readable");
    (path, source)
}

fn lines(violations: &[Violation]) -> Vec<usize> {
    violations.iter().map(|v| v.line).collect()
}

#[test]
fn lock_order_lint_fires_on_each_violation_shape() {
    let (path, src) = fixture("lock_order.rs");
    let v = scan_lock_order(&path, &src);
    assert_eq!(
        lines(&v),
        vec![12, 17, 23, 29, 34, 67],
        "missing annotation, malformed rank, in-function inversion, \
         recursive acquisition, rank conflict, and LOCK-HELD inversion \
         must fire; waived, temporary, dropped, scoped-out, and test-mod \
         sites must not: {v:#?}"
    );
    assert!(v.iter().all(|v| v.lint == "lock-order"));
    assert!(v[0].message.contains("without a"), "{}", v[0]);
    assert!(v[1].message.contains("malformed"), "{}", v[1]);
    assert!(v[2].message.contains("inversion"), "{}", v[2]);
    assert!(v[3].message.contains("recursive"), "{}", v[3]);
    assert!(v[4].message.contains("rank 15"), "{}", v[4]);
    assert!(
        v[5].message.contains("inversion") && v[5].message.contains("fix.d"),
        "the LOCK-HELD pseudo-guard must drive the inversion: {}",
        v[5]
    );
}

#[test]
fn lock_order_lint_detects_ab_ba_cycles() {
    let (path, src) = fixture("lock_order_cycle.rs");
    let v = scan_lock_order(&path, &src);
    assert_eq!(
        lines(&v),
        vec![14, 14],
        "the BA ordering must fire both as an inversion and as a cycle: {v:#?}"
    );
    assert!(v.iter().any(|v| v.message.contains("inversion")), "{v:#?}");
    assert!(
        v.iter()
            .any(|v| v.message.contains("cycle") && v.message.contains("cyc.a -> cyc.b -> cyc.a")),
        "{v:#?}"
    );
}

#[test]
fn hold_across_await_fires_on_live_guards_only() {
    let (path, src) = fixture("hold_await.rs");
    let v = scan_hold_across_await(&path, &src);
    assert_eq!(
        lines(&v),
        vec![7, 12],
        "the held guard and the same-line temporary must fire; dropped, \
         scoped-out, waived, and test-mod awaits must not: {v:#?}"
    );
    assert!(v.iter().all(|v| v.lint == "hold-across-await"));
}

#[test]
fn durability_ordering_fires_on_unsynced_installs_only() {
    let (path, src) = fixture("durability.rs");
    let v = scan_durability(&path, &src);
    assert_eq!(
        lines(&v),
        vec![6, 15],
        "the unsynced rename and the never-synced create must fire; \
         sync-then-rename, synced create, waived, and test-mod sites \
         must not: {v:#?}"
    );
    assert!(v.iter().all(|v| v.lint == "durability-ordering"));
}

#[test]
fn metrics_drift_fires_in_both_directions() {
    let (rs_path, rs_src) = fixture("metrics.rs");
    let (md_path, md_src) = fixture("METRICS.md");
    let defs = collect_metric_defs(&rs_path, &rs_src, "lsm");
    let names: Vec<&str> = defs.iter().map(|d| d.name.as_str()).collect();
    assert_eq!(
        names,
        vec![
            "lsm.fixture.documented",
            "lsm.fixture.undocumented",
            "offload.shard*.fixture",
            "lsm.fixture.wrong-kind",
        ],
        "untracked prefixes and test-mod registrations must not collect"
    );
    let inventory = parse_metrics_inventory(&md_src);
    let v = metrics_drift(&defs, &md_path, &inventory);
    let at: Vec<(&Path, usize)> = v.iter().map(|v| (v.file.as_path(), v.line)).collect();
    assert_eq!(
        at,
        vec![
            (rs_path.as_path(), 6),  // registered, undocumented
            (md_path.as_path(), 9),  // kind drift
            (md_path.as_path(), 11), // stale row
        ],
        "{v:#?}"
    );
    assert!(v.iter().all(|v| v.lint == "metrics-drift"));
}

/// The repo itself must be analysis-clean — this is the `cargo xtask
/// analyze` gate, enforced from the test suite too so plain `cargo test`
/// catches violations without a separate CI step.
#[test]
fn repository_is_analysis_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("repo root");
    let violations = analyze_repo(root);
    assert!(
        violations.is_empty(),
        "repo analysis violations:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
