//! Proof that each xtask lint is live: every fixture under `fixtures/`
//! violates its lint at known lines (and demonstrates the waiver and
//! test-exemption forms, which must NOT fire). The final test runs the
//! full lint suite over the real repo — the same gate `cargo xtask lint`
//! applies in CI — so a regression in either the tree or the scanner
//! fails `cargo test`.

use std::path::{Path, PathBuf};

use xtask::{
    lint_repo, scan_determinism, scan_direct_fs, scan_no_panics, scan_paper_constants, scan_safety,
    Violation,
};

fn fixture(name: &str) -> (PathBuf, String) {
    let path = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("fixtures")
        .join(name);
    let source = std::fs::read_to_string(&path).expect("fixture readable");
    (path, source)
}

fn lines(violations: &[Violation]) -> Vec<usize> {
    violations.iter().map(|v| v.line).collect()
}

#[test]
fn safety_lint_fires_on_uncommented_unsafe_only() {
    let (path, src) = fixture("safety.rs");
    let v = scan_safety(&path, &src);
    assert_eq!(
        lines(&v),
        vec![7],
        "exactly the SAFETY-less unsafe must fire: {v:#?}"
    );
    assert!(v.iter().all(|v| v.lint == "safety-comments"));
}

#[test]
fn paper_constants_lint_fires_on_inline_numbers_only() {
    let (path, src) = fixture("constants.rs");
    let v = scan_paper_constants(&path, &src);
    assert_eq!(
        lines(&v),
        vec![4, 13],
        "the inline const and the magic float must fire; waived and \
         test-mod constants must not: {v:#?}"
    );
    assert!(v.iter().all(|v| v.lint == "paper-constants"));
}

#[test]
fn determinism_lint_fires_on_wall_clock_only() {
    let (path, src) = fixture("determinism.rs");
    let v = scan_determinism(&path, &src);
    assert_eq!(
        lines(&v),
        vec![8, 12],
        "Instant::now and thread::sleep must fire; the waived call and \
         test-mod timing must not: {v:#?}"
    );
    assert!(v.iter().all(|v| v.lint == "determinism"));
}

#[test]
fn no_panics_lint_fires_on_unwaived_panics_only() {
    let (path, src) = fixture("panics.rs");
    let v = scan_no_panics(&path, &src);
    assert_eq!(
        lines(&v),
        vec![6, 10, 14],
        "unwrap/expect/panic! must fire; unwrap_or, waived calls, and \
         test-mod unwraps must not: {v:#?}"
    );
    assert!(v.iter().all(|v| v.lint == "no-panics"));
}

#[test]
fn direct_fs_lint_fires_on_unwaived_std_fs_only() {
    let (path, src) = fixture("direct_fs.rs");
    let v = scan_direct_fs(&path, &src);
    assert_eq!(
        lines(&v),
        vec![5, 8],
        "the bare import and the inline call must fire; waived calls, \
         string mentions, and test-mod uses must not: {v:#?}"
    );
    assert!(v.iter().all(|v| v.lint == "no-direct-fs"));
}

/// The repo itself must be lint-clean — this is the `cargo xtask lint`
/// gate, enforced from the test suite too so plain `cargo test` catches
/// violations without a separate CI step.
#[test]
fn repository_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("repo root");
    let violations = lint_repo(root);
    assert!(
        violations.is_empty(),
        "repo lint violations:\n{}",
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
