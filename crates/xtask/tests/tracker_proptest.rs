//! The analyze token/scope tracker must never panic, whatever bytes it
//! is fed: the scanners run over every source file in the repo, so a
//! panic on odd-but-legal text (multibyte identifiers, unbalanced
//! braces, comment markers inside strings, truncated statements) would
//! take the whole lint gate down. Two generators drive the property:
//! fully arbitrary char soup, and a "rustish" token stream that steers
//! the generator toward the shapes the tracker actually parses
//! (acquisitions, annotations, awaits, renames, registrations).

use std::path::Path;

use proptest::prelude::*;
use xtask::{
    collect_metric_defs, parse_metrics_inventory, scan_durability, scan_hold_across_await,
    scan_lock_order, violations_json,
};

/// Tokens biased toward every construct the tracker inspects.
const RUSTISH: &[&str] = &[
    "fn",
    "f",
    "(",
    ")",
    "{",
    "}",
    "\n",
    ";",
    ",",
    "=",
    "==",
    "=>",
    "let",
    "mut",
    "g",
    "Ok(",
    "Some(",
    "s.a.lock()",
    ".read()",
    ".write()",
    "lock(",
    "shim_lock(",
    ".unwrap()",
    ".expect(\"x\")",
    ".unwrap_or_else(|e| e.into_inner())",
    ".await",
    "drop(g)",
    "drop(",
    "// LOCK-ORDER: a 10",
    "// LOCK-ORDER: b",
    "// LOCK-ORDER-OK: why",
    "// LOCK-HELD: a via g",
    "// LOCK-HELD:",
    "// HOLD-OK: why",
    "// DURABILITY-OK: why",
    "env.rename(a, b)",
    "::rename(",
    ".create_writable(",
    ".sync()",
    ".sync_dir(",
    "reg.counter(\"lsm.x\")",
    ".gauge(",
    ".histogram(&format!(\"offload.s{i}.q\"))",
    "\"",
    "\\",
    "//",
    "#[cfg(test)]",
    "mod tests",
    "| `lsm.x` | counter | lsm | doc |",
    "é🦀",
];

fn run_all(src: &str) {
    let path = Path::new("generated.rs");
    let root = Path::new("/");
    let mut v = scan_lock_order(path, src);
    v.extend(scan_hold_across_await(path, src));
    v.extend(scan_durability(path, src));
    let _ = violations_json(root, &v);
    let _ = collect_metric_defs(path, src, "lsm");
    let _ = parse_metrics_inventory(src);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn tracker_survives_arbitrary_text(chars in prop::collection::vec(any::<char>(), 0..1200)) {
        run_all(&chars.into_iter().collect::<String>());
    }

    #[test]
    fn tracker_survives_rustish_token_soup(
        toks in prop::collection::vec(
            prop::sample::select(RUSTISH.to_vec()),
            0..400,
        ),
        seps in prop::collection::vec(prop_oneof![Just(" "), Just(""), Just("\n")], 0..400),
    ) {
        let mut src = String::new();
        for (i, t) in toks.iter().enumerate() {
            src.push_str(t);
            src.push_str(seps.get(i).copied().unwrap_or(" "));
        }
        run_all(&src);
    }
}
