//! `cargo xtask analyze` — scope-aware concurrency and durability lints.
//!
//! Where `cargo xtask lint` matches single lines, `analyze` tracks a
//! little state on top of the same [`scan_lines`] infrastructure: brace
//! depth, the liveness of lock guards bound by `let g = x.lock()`,
//! function extents, and the ordered sync/rename events inside each
//! function. Four lints ride on that tracker:
//!
//! | lint                  | rule                                                | waiver              |
//! |-----------------------|-----------------------------------------------------|---------------------|
//! | `lock-order`          | every lock acquisition carries `// LOCK-ORDER: <name> <rank>`; acquiring a lock while a guard of equal or higher rank is live is an inversion, and the cross-crate acquisition graph must be acyclic | `// LOCK-ORDER-OK:` |
//! | `hold-across-await`   | no sync lock guard may be live across an `.await` (it blocks the executor thread and deadlocks single-threaded runtimes) | `// HOLD-OK:`       |
//! | `durability-ordering` | a `rename` call must be preceded in the same function by a `sync`/`sync_dir`; a function calling `create_writable` must sync somewhere (the PR 5 crash-consistency ordering, machine-checked) | `// DURABILITY-OK:` |
//! | `metrics-drift`       | the set of metric names registered against `obs::Registry` equals the METRICS.md inventory (both directions) | fix METRICS.md      |
//!
//! Annotation grammar (trailing comment on the acquisition line, or in
//! the comment block above the statement that contains it):
//!
//! * `// LOCK-ORDER: <name> <rank> [prose]` — names the lock and pins
//!   its rank. Ranks are global: the same name must carry the same rank
//!   everywhere, and a lock may only be acquired while strictly
//!   lower-ranked guards are held.
//! * `// LOCK-ORDER-OK: <why>` — waives one site (generic helpers whose
//!   lock identity is unknowable, e.g. `sync_shim::lock`).
//! * `// LOCK-HELD: <name> [via <var>] [prose]` — on a function,
//!   declares a lock the *caller* holds on entry (a guard parameter or a
//!   `&mut` borrow of guarded state). The tracker treats it as live for
//!   the body — until `drop(<var>)` when `via <var>` names the binding —
//!   so cross-function nesting like `rotate_memtable` (state held by the
//!   caller, epoch acquired inside) is still checked.
//!
//! Guard-liveness model: a `let g = x.lock()` binding is live from its
//! statement to the end of the enclosing brace scope, `drop(g)`, or a
//! rebinding of `g`; an acquisition whose result is consumed by further
//! chaining (`x.lock().field.clone()`) is a temporary, live only for its
//! own statement. `.unwrap()` / `.expect(..)` / `.unwrap_or_else(..)`
//! after `.lock()` still yield the guard (std `Mutex` returns `Result`).
//!
//! Limitations, deliberate: the tracker sees syntactic nesting within
//! one function only. A guard passed to a callee is invisible at the
//! callee's acquisitions unless the callee declares it with
//! `// LOCK-HELD:` — the rank table in DESIGN.md encodes the full
//! design intent, so any future in-function nesting is checked against
//! it even where today's edges are cross-function. Like the PR 3 lints,
//! the scanner is textual: `rustfmt`-normalized source stays well inside
//! what it handles, and the fixture tests pin the behavior that matters.

use std::collections::{BTreeMap, BTreeSet};
use std::path::{Path, PathBuf};

use crate::{brace_delta, has_word, read, rs_files, scan_lines, ScanLine, Violation};

/// Crates whose lock acquisitions must all carry `LOCK-ORDER` ranks.
pub const LOCK_ORDER_CRATES: &[&str] = &["lsm", "offload", "server"];

/// Crates whose async code must not hold sync guards across `.await`.
pub const HOLD_ACROSS_AWAIT_CRATES: &[&str] = &["server"];

/// Files on the durability-critical path: `sstable::env` backends plus
/// the WAL/manifest/table install paths whose sync-before-rename
/// ordering the PR 5 crash-consistency work established.
pub const DURABILITY_FILES: &[&str] = &[
    "crates/sstable/src/env/mod.rs",
    "crates/sstable/src/env/fault.rs",
    "crates/lsm/src/wal.rs",
    "crates/lsm/src/version.rs",
    "crates/lsm/src/repair.rs",
    "crates/lsm/src/db.rs",
    "crates/lsm/src/vlog.rs",
    "crates/lsm/src/compaction.rs",
    "crates/lsm/src/pipeline.rs",
];

/// Metric name prefixes METRICS.md inventories. Names outside these
/// (e.g. the simulator's `sim.*`) are not part of the public surface.
pub const METRIC_PREFIXES: &[&str] = &["lsm.", "offload.", "server.", "fcae.", "repl."];

// ---------------------------------------------------------------------
// Token/scope tracker
// ---------------------------------------------------------------------

/// A live guard: a named lock acquisition bound to a variable, or a
/// `LOCK-HELD` precondition covering a function body.
struct GuardRec {
    /// Lock name from the annotation (`None` for waived/unannotated
    /// sites — they stay live for scoping but produce no edges).
    lock: Option<String>,
    /// Variable the guard is bound to (drop/rebind target).
    var: Option<String>,
    /// Brace depth the guard lives at; it dies when the running depth
    /// drops below this.
    depth: i32,
    /// 1-based line the guard was born on.
    line: usize,
    /// Column of the acquisition (same-line `.await` ordering).
    col: usize,
}

/// One annotated acquisition site (rank table input).
struct SiteRec {
    name: String,
    rank: u32,
    file: PathBuf,
    line: usize,
}

/// One observed nesting: `inner` acquired while `outer` was live.
struct EdgeRec {
    outer: String,
    inner: String,
    file: PathBuf,
    line: usize,
}

/// An `.await` reached with live guards.
struct AwaitHold {
    line: usize,
    guards: Vec<String>,
    waived: bool,
}

#[derive(Default)]
struct Walk {
    violations: Vec<Violation>,
    sites: Vec<SiteRec>,
    edges: Vec<EdgeRec>,
    awaits: Vec<AwaitHold>,
}

/// Byte offsets in `code` where a lock acquisition starts, left to
/// right. `.lock()`/`.read()`/`.write()` require empty argument lists so
/// `io::Read::read(buf)` and `io::Write::write(buf)` never match; the
/// bare `lock(` / `shim_lock(` forms cover the `sync_shim::lock` helper
/// and its `db.rs` alias. `fn lock(` definitions are excluded.
fn acquisition_cols(code: &str) -> Vec<(usize, usize)> {
    let mut out: Vec<(usize, usize)> = Vec::new();
    for tok in [".lock()", ".read()", ".write()"] {
        let mut start = 0;
        while let Some(pos) = code[start..].find(tok) {
            let at = start + pos;
            start = at + tok.len();
            out.push((at, at + tok.len()));
        }
    }
    for tok in ["lock(", "shim_lock("] {
        let mut start = 0;
        while let Some(pos) = code[start..].find(tok) {
            let at = start + pos;
            start = at + tok.len();
            let before = code[..at].chars().next_back();
            if before.is_some_and(|c| c.is_alphanumeric() || c == '_' || c == '.') {
                continue; // part of a longer identifier, or the `.lock()` form
            }
            if code[..at].trim_end().ends_with("fn") {
                continue; // `fn lock(` definition, not a call
            }
            // The call takes arguments: the guard expression ends at the
            // matching close paren.
            out.push((at, skip_to_close(code, at + tok.len())));
        }
    }
    out.sort_unstable();
    out.dedup_by_key(|(at, _)| *at);
    out
}

/// Given `code` and the offset just past an opening paren, returns the
/// offset just past the matching close (or the end of the line).
fn skip_to_close(code: &str, from: usize) -> usize {
    let mut depth = 1i32;
    for (i, c) in code[from..].char_indices() {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    return from + i + 1;
                }
            }
            _ => {}
        }
    }
    code.len()
}

/// Walks back from line `idx` to the first line of the statement
/// containing it: the walk continues while the previous line ends
/// mid-expression (anything but `;`, `{`, `}`, `,`).
fn statement_start(lines: &[ScanLine], idx: usize) -> usize {
    let mut i = idx;
    while i > 0 {
        let prev = lines[i - 1].code.trim_end();
        let Some(last) = prev.chars().next_back() else {
            break; // blank or comment-only line
        };
        if matches!(last, ';' | '{' | '}' | ',') {
            break;
        }
        i -= 1;
    }
    i
}

/// If the statement binds its value (`let g = ...`, `g = ...`, match-arm
/// `... => g = ...`), returns the bound variable name.
fn binding_var(stmt_code: &str) -> Option<String> {
    let mut s = stmt_code.trim_start();
    if let Some(arrow) = s.find("=>") {
        s = s[arrow + 2..].trim_start();
    }
    let ident = |t: &str| -> String {
        t.chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect()
    };
    if let Some(rest) = s.strip_prefix("let ") {
        let mut rest = rest.trim_start();
        rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
        for pat in ["Ok(", "Some("] {
            if let Some(inner) = rest.strip_prefix(pat) {
                rest = inner.trim_start();
                rest = rest.strip_prefix("mut ").unwrap_or(rest).trim_start();
                break;
            }
        }
        let name = ident(rest);
        if name.is_empty() || name == "_" {
            None
        } else {
            Some(name)
        }
    } else {
        let name = ident(s);
        if name.is_empty() {
            return None;
        }
        let rest = s[name.len()..].trim_start();
        if rest.starts_with('=') && !rest.starts_with("==") && !rest.starts_with("=>") {
            Some(name)
        } else {
            None
        }
    }
}

/// True if the acquisition's result is consumed by further chaining
/// (field access or a non-guard method) instead of kept as a guard.
/// `.unwrap()` / `.expect(..)` / `.unwrap_or_else(..)` still yield the
/// guard, so chaining is followed through them first. The statement tail
/// may continue on following lines.
fn chained_past_guard(lines: &[ScanLine], idx: usize, col_after: usize) -> bool {
    let mut tail = lines[idx].code[col_after.min(lines[idx].code.len())..].to_string();
    let mut i = idx;
    while i + 1 < lines.len() && tail.len() < 1024 {
        let t = tail.trim_end();
        if t.ends_with(';') || t.ends_with('{') || t.ends_with('}') {
            break;
        }
        i += 1;
        tail.push(' ');
        tail.push_str(lines[i].code.trim());
    }
    let mut rest = tail.trim_start();
    loop {
        if let Some(r) = rest.strip_prefix(".unwrap()") {
            rest = r.trim_start();
        } else if let Some(r) = rest
            .strip_prefix(".unwrap_or_else(")
            .or_else(|| rest.strip_prefix(".expect("))
        {
            let close = skip_to_close(r, 0);
            rest = r[close.min(r.len())..].trim_start();
        } else {
            break;
        }
    }
    rest.starts_with('.')
}

/// Extracts the payload after `token` from line `idx`'s trailing comment
/// or the contiguous comment/attribute block above line `stmt`.
fn annotation_payload(lines: &[ScanLine], idx: usize, stmt: usize, token: &str) -> Option<String> {
    let raw = &lines[idx].raw;
    if let Some(c) = raw.find("//") {
        if let Some(p) = raw[c..].find(token) {
            return Some(raw[c + p + token.len()..].trim().to_string());
        }
    }
    let mut i = stmt;
    while i > 0 {
        i -= 1;
        let t = lines[i].raw.trim();
        if t.starts_with("//") {
            if let Some(p) = t.find(token) {
                return Some(t[p + token.len()..].trim().to_string());
            }
        } else if t.starts_with("#[") || t.starts_with("#![") {
            // Attributes may sit between the comment and the item.
        } else {
            break;
        }
    }
    None
}

/// Minimum brace depth reached while scanning the line (so `} else {`
/// ends the `if` branch's guards even though its net delta is zero).
fn min_depth_in_line(code: &str, before: i32) -> i32 {
    let mut d = before;
    let mut min = before;
    for c in code.chars() {
        match c {
            '{' => d += 1,
            '}' => {
                d -= 1;
                min = min.min(d);
            }
            _ => {}
        }
    }
    min
}

/// Kills guards whose bound variable is dropped on this line.
fn apply_drops(code: &str, guards: &mut Vec<GuardRec>) {
    let mut start = 0;
    while let Some(pos) = code[start..].find("drop(") {
        let at = start + pos;
        start = at + 5;
        let before = code[..at].chars().next_back();
        if before.is_some_and(|c| c.is_alphanumeric() || c == '_') {
            continue;
        }
        let var: String = code[at + 5..]
            .trim_start()
            .chars()
            .take_while(|c| c.is_alphanumeric() || *c == '_')
            .collect();
        if !var.is_empty() {
            guards.retain(|g| g.var.as_deref() != Some(var.as_str()));
        }
    }
}

/// One human-readable description of a live guard.
fn describe(g: &GuardRec) -> String {
    match (&g.lock, &g.var) {
        (Some(l), _) => format!("`{l}` (line {})", g.line),
        (None, Some(v)) => format!("`{v}` (line {})", g.line),
        (None, None) => format!("guard from line {}", g.line),
    }
}

/// The core pass: tracks guard liveness through one file, collecting
/// annotation violations, rank sites, nesting edges, and awaits reached
/// with guards live. `require_annotations` is off for the
/// hold-across-await use, which cares about liveness only.
fn walk_guards(file: &Path, source: &str, require_annotations: bool) -> Walk {
    let lines = scan_lines(source);
    let mut w = Walk::default();
    let mut depth = 0i32;
    let mut guards: Vec<GuardRec> = Vec::new();
    let mut pending_held: Vec<(String, Option<String>)> = Vec::new();

    for (i, l) in lines.iter().enumerate() {
        let before = depth;
        let delta = brace_delta(&l.code);
        let after = before + delta;
        let min = min_depth_in_line(&l.code, before);
        depth = after;
        guards.retain(|g| g.depth <= min);
        if l.in_test_mod {
            pending_held.clear();
            continue;
        }

        // `LOCK-HELD` preconditions on function declarations become
        // pseudo-guards covering the body.
        let trimmed = l.code.trim();
        if has_word(&l.code, "fn") && !trimmed.ends_with(';') {
            if let Some(p) = annotation_payload(&lines, i, i, "LOCK-HELD:") {
                let mut toks = p.split_whitespace();
                match toks.next() {
                    Some(name) => {
                        let var = if toks.next() == Some("via") {
                            toks.next().map(str::to_string)
                        } else {
                            None
                        };
                        pending_held.push((name.to_string(), var));
                    }
                    None => w.violations.push(Violation {
                        file: file.to_path_buf(),
                        line: l.no,
                        lint: "lock-order",
                        message: "malformed `// LOCK-HELD:` — expected `<name> [via <var>]`".into(),
                    }),
                }
            }
        }
        if after > before && !pending_held.is_empty() {
            for (name, var) in pending_held.drain(..) {
                guards.push(GuardRec {
                    lock: Some(name),
                    var,
                    depth: before + 1,
                    line: l.no,
                    col: 0,
                });
            }
        }

        apply_drops(&l.code, &mut guards);

        let mut line_temps: Vec<GuardRec> = Vec::new();
        for (col, col_after) in acquisition_cols(&l.code) {
            let stmt = statement_start(&lines, i);
            let var = binding_var(lines[stmt].code.trim());
            let temporary = var.is_none() || chained_past_guard(&lines, i, col_after);
            let waived_site = annotation_payload(&lines, i, stmt, "LOCK-ORDER-OK:").is_some();
            let mut name: Option<String> = None;
            if !waived_site {
                match annotation_payload(&lines, i, stmt, "LOCK-ORDER:") {
                    Some(p) => {
                        let mut toks = p.split_whitespace();
                        match (toks.next(), toks.next().and_then(|r| r.parse::<u32>().ok())) {
                            (Some(n), Some(rank)) => {
                                name = Some(n.to_string());
                                w.sites.push(SiteRec {
                                    name: n.to_string(),
                                    rank,
                                    file: file.to_path_buf(),
                                    line: l.no,
                                });
                            }
                            _ => w.violations.push(Violation {
                                file: file.to_path_buf(),
                                line: l.no,
                                lint: "lock-order",
                                message: format!(
                                    "malformed `// LOCK-ORDER:` annotation `{p}` — expected \
                                     `<name> <rank>`"
                                ),
                            }),
                        }
                    }
                    None if require_annotations => w.violations.push(Violation {
                        file: file.to_path_buf(),
                        line: l.no,
                        lint: "lock-order",
                        message: "lock acquisition without a `// LOCK-ORDER: <name> <rank>` \
                                  annotation (waiver: // LOCK-ORDER-OK: <why>)"
                            .into(),
                    }),
                    None => {}
                }
            }
            // A rebinding (`state = self.state.lock()`) replaces the old
            // guard before the nesting edges are recorded.
            if let Some(v) = &var {
                guards.retain(|g| g.var.as_deref() != Some(v.as_str()));
            }
            if let Some(n) = &name {
                for g in guards.iter().chain(line_temps.iter()) {
                    if let Some(o) = &g.lock {
                        w.edges.push(EdgeRec {
                            outer: o.clone(),
                            inner: n.clone(),
                            file: file.to_path_buf(),
                            line: l.no,
                        });
                    }
                }
            }
            let rec = GuardRec {
                lock: name,
                var: var.clone(),
                depth: after,
                line: l.no,
                col,
            };
            if temporary {
                line_temps.push(rec);
            } else {
                guards.push(rec);
            }
        }

        // `.await` with live guards. Same-line temporaries count when
        // the acquisition precedes the await (`f(&*m.lock()).await`).
        if let Some(acol) = l.code.find(".await") {
            let mut held: Vec<String> = guards.iter().map(describe).collect();
            held.extend(line_temps.iter().filter(|g| g.col < acol).map(describe));
            if !held.is_empty() {
                let stmt = statement_start(&lines, i);
                w.awaits.push(AwaitHold {
                    line: l.no,
                    guards: held,
                    waived: annotation_payload(&lines, i, stmt, "HOLD-OK:").is_some(),
                });
            }
        }
    }
    w
}

// ---------------------------------------------------------------------
// lock-order
// ---------------------------------------------------------------------

/// Rank-table and graph checks over the accumulated sites and edges:
/// one rank per name, strictly increasing ranks along every observed
/// nesting, and an acyclic acquisition graph.
fn lock_graph_check(sites: &[SiteRec], edges: &[EdgeRec]) -> Vec<Violation> {
    let mut v = Vec::new();
    let mut ranks: BTreeMap<&str, (u32, &Path, usize)> = BTreeMap::new();
    for s in sites {
        match ranks.get(s.name.as_str()) {
            Some(&(rank, file, line)) if rank != s.rank => v.push(Violation {
                file: s.file.clone(),
                line: s.line,
                lint: "lock-order",
                message: format!(
                    "lock `{}` annotated with rank {} here but rank {} at {}:{}",
                    s.name,
                    s.rank,
                    rank,
                    file.display(),
                    line
                ),
            }),
            Some(_) => {}
            None => {
                ranks.insert(&s.name, (s.rank, &s.file, s.line));
            }
        }
    }
    for e in edges {
        if e.outer == e.inner {
            v.push(Violation {
                file: e.file.clone(),
                line: e.line,
                lint: "lock-order",
                message: format!(
                    "recursive acquisition: `{}` taken while a `{}` guard is already live",
                    e.inner, e.outer
                ),
            });
            continue;
        }
        if let (Some(&(ro, ..)), Some(&(ri, ..))) =
            (ranks.get(e.outer.as_str()), ranks.get(e.inner.as_str()))
        {
            if ro >= ri {
                v.push(Violation {
                    file: e.file.clone(),
                    line: e.line,
                    lint: "lock-order",
                    message: format!(
                        "lock-order inversion: `{}` (rank {ri}) acquired while `{}` (rank {ro}) \
                         is held — ranks must strictly increase inward",
                        e.inner, e.outer
                    ),
                });
            }
        }
    }
    // Cycle check over the acquisition graph. With consistent strictly
    // increasing ranks a cycle always contains an inversion too, but the
    // graph check stands on its own (and catches rank-table bugs).
    let mut adj: BTreeMap<&str, BTreeSet<&str>> = BTreeMap::new();
    for e in edges {
        // Self-edges are already reported as recursive acquisitions.
        if e.outer != e.inner {
            adj.entry(&e.outer).or_default().insert(&e.inner);
        }
    }
    let nodes: Vec<&str> = adj.keys().copied().collect();
    let mut done: BTreeSet<&str> = BTreeSet::new();
    for &start in &nodes {
        if done.contains(start) {
            continue;
        }
        let mut stack: Vec<(&str, Vec<&str>)> = vec![(start, vec![start])];
        // Iterative DFS; the first back edge reports the cycle.
        while let Some((node, path)) = stack.pop() {
            let in_path: BTreeSet<&str> = path.iter().copied().collect();
            done.insert(node);
            for &next in adj.get(node).into_iter().flatten() {
                if in_path.contains(next) {
                    let from = path.iter().position(|&n| n == next).unwrap_or(0);
                    let mut cycle: Vec<&str> = path[from..].to_vec();
                    cycle.push(next);
                    let at = edges.iter().find(|e| e.outer == node && e.inner == next);
                    let (file, line) = at.map_or_else(
                        || (PathBuf::from("<graph>"), 0),
                        |e| (e.file.clone(), e.line),
                    );
                    v.push(Violation {
                        file,
                        line,
                        lint: "lock-order",
                        message: format!("lock acquisition cycle: {}", cycle.join(" -> ")),
                    });
                    return v;
                }
                if !done.contains(next) {
                    let mut p = path.clone();
                    p.push(next);
                    stack.push((next, p));
                }
            }
        }
    }
    v
}

/// `lock-order` over one file (fixture tests drive this directly; the
/// repo driver merges sites and edges across files before the graph
/// checks so cross-crate nestings are seen).
pub fn scan_lock_order(file: &Path, source: &str) -> Vec<Violation> {
    let w = walk_guards(file, source, true);
    let mut v = w.violations;
    v.extend(lock_graph_check(&w.sites, &w.edges));
    v.sort_by_key(|x| x.line);
    v
}

// ---------------------------------------------------------------------
// hold-across-await
// ---------------------------------------------------------------------

/// `hold-across-await`: a sync lock guard live across an `.await` parks
/// the guard on a suspended future — any other task needing that lock
/// blocks its executor thread, which deadlocks a single-threaded
/// runtime and stalls a multi-threaded one.
pub fn scan_hold_across_await(file: &Path, source: &str) -> Vec<Violation> {
    let w = walk_guards(file, source, false);
    w.awaits
        .into_iter()
        .filter(|a| !a.waived)
        .map(|a| Violation {
            file: file.to_path_buf(),
            line: a.line,
            lint: "hold-across-await",
            message: format!(
                "`.await` while {} live — release sync guards before suspending \
                 (waiver: // HOLD-OK: <why>)",
                a.guards.join(", ")
            ),
        })
        .collect()
}

// ---------------------------------------------------------------------
// durability-ordering
// ---------------------------------------------------------------------

const SYNC_TOKENS: &[&str] = &[".sync()", ".sync_all()", ".sync_dir("];

/// `durability-ordering`: in each function, a `rename` must be preceded
/// by a sync-family call (the payload an atomic install publishes must
/// be durable before the pointer flips), and a function that creates a
/// file must sync somewhere (no fire-and-forget file creation on the
/// durability path).
pub fn scan_durability(file: &Path, source: &str) -> Vec<Violation> {
    let lines = scan_lines(source);
    let mut v = Vec::new();

    // Function regions: (first line, body depth). Lines outside any fn
    // (trait signatures, struct fields) are skipped.
    let mut depth = 0i32;
    let mut region_of: Vec<Option<usize>> = vec![None; lines.len()];
    let mut regions: Vec<(usize, usize)> = Vec::new(); // (start, end) line idx
    let mut stack: Vec<(usize, i32)> = Vec::new(); // (region idx, body depth)
    let mut pending_fn = false;
    for (i, l) in lines.iter().enumerate() {
        let before = depth;
        let after = before + brace_delta(&l.code);
        let min = min_depth_in_line(&l.code, before);
        depth = after;
        while let Some(&(r, d)) = stack.last() {
            if d > min.max(after) {
                regions[r].1 = i;
                stack.pop();
            } else {
                break;
            }
        }
        let trimmed = l.code.trim();
        if has_word(&l.code, "fn") && !trimmed.ends_with(';') {
            pending_fn = true;
        }
        if pending_fn && after > before {
            regions.push((i, lines.len()));
            stack.push((regions.len() - 1, before + 1));
            pending_fn = false;
        }
        region_of[i] = stack.last().map(|&(r, _)| r);
    }

    // Ordered sync/rename/create events per region.
    let has_sync = |code: &str| SYNC_TOKENS.iter().any(|t| code.contains(t));
    let sync_before: Vec<BTreeSet<usize>> = {
        // For each region, the set of line indices with a sync call.
        let mut per: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); regions.len()];
        for (i, l) in lines.iter().enumerate() {
            if let Some(r) = region_of[i] {
                if has_sync(&l.code) {
                    per[r].insert(i);
                }
            }
        }
        per
    };

    for (i, l) in lines.iter().enumerate() {
        if l.in_test_mod {
            continue;
        }
        let Some(r) = region_of[i] else { continue };
        let code = &l.code;
        let is_rename = (code.contains(".rename(") || code.contains("::rename("))
            && !code.contains("fn rename");
        let is_create = code.contains(".create_writable(") && !code.contains("fn create_writable");
        if !is_rename && !is_create {
            continue;
        }
        let stmt = statement_start(&lines, i);
        if annotation_payload(&lines, i, stmt, "DURABILITY-OK:").is_some() {
            continue;
        }
        if is_rename && sync_before[r].range(..i).next_back().is_none() {
            v.push(Violation {
                file: file.to_path_buf(),
                line: l.no,
                lint: "durability-ordering",
                message: "`rename` with no preceding sync/sync_dir in this function — the \
                          payload must be durable before the install point flips \
                          (waiver: // DURABILITY-OK: <why>)"
                    .into(),
            });
        }
        if is_create && sync_before[r].is_empty() {
            v.push(Violation {
                file: file.to_path_buf(),
                line: l.no,
                lint: "durability-ordering",
                message: "`create_writable` in a function that never syncs — created files \
                          must be synced (or the sync delegated and waived: \
                          // DURABILITY-OK: <why>)"
                    .into(),
            });
        }
    }
    v
}

// ---------------------------------------------------------------------
// metrics-drift
// ---------------------------------------------------------------------

/// One metric registration found in source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MetricDef {
    /// Normalized name (`format!` interpolations become `*`).
    pub name: String,
    /// `counter` | `gauge` | `histogram`.
    pub kind: &'static str,
    /// Crate the registration lives in.
    pub krate: String,
    /// Registration site.
    pub file: PathBuf,
    /// 1-based line of the registration.
    pub line: usize,
}

/// Replaces `{interpolation}` spans with `*` so per-shard / per-level
/// `format!` registrations collapse to one documented name.
fn normalize_metric(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    let mut rest = name;
    while let Some(open) = rest.find('{') {
        out.push_str(&rest[..open]);
        out.push('*');
        match rest[open..].find('}') {
            Some(close) => rest = &rest[open + close + 1..],
            None => return out,
        }
    }
    out.push_str(rest);
    out
}

/// Collects `obs::Registry` registrations (`.counter("...")` /
/// `.gauge(..)` / `.histogram(..)`, literal or `&format!("...")`) whose
/// names carry a tracked prefix. Registrations through a name variable
/// are invisible to this scan — the tracked prefixes are all registered
/// with literals.
pub fn collect_metric_defs(file: &Path, source: &str, krate: &str) -> Vec<MetricDef> {
    let lines = scan_lines(source);
    let mut out = Vec::new();
    for l in &lines {
        if l.in_test_mod {
            continue;
        }
        for (tok, kind) in [
            (".counter(", "counter"),
            (".gauge(", "gauge"),
            (".histogram(", "histogram"),
        ] {
            // Match on blanked code (comments can't register metrics),
            // then read the k-th occurrence from the raw line, where the
            // string literal survives.
            let mut k = 0;
            let mut start = 0;
            while let Some(pos) = l.code[start..].find(tok) {
                start += pos + tok.len();
                k += 1;
                let mut raw_at = 0;
                for _ in 0..k {
                    match l.raw[raw_at..].find(tok) {
                        Some(p) => raw_at += p + tok.len(),
                        None => break,
                    }
                }
                let rest = &l.raw[raw_at.min(l.raw.len())..];
                let Some(q0) = rest.find('"') else { continue };
                let Some(q1) = rest[q0 + 1..].find('"') else {
                    continue;
                };
                let name = &rest[q0 + 1..q0 + 1 + q1];
                if METRIC_PREFIXES.iter().any(|p| name.starts_with(p)) {
                    out.push(MetricDef {
                        name: normalize_metric(name),
                        kind,
                        krate: krate.to_string(),
                        file: file.to_path_buf(),
                        line: l.no,
                    });
                }
            }
        }
    }
    out
}

/// One row of the METRICS.md inventory table.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InventoryRow {
    /// Metric name (normalized spelling, `*` for interpolations).
    pub name: String,
    /// Documented kind.
    pub kind: String,
    /// Documented owning crate.
    pub krate: String,
    /// 1-based line in METRICS.md.
    pub line: usize,
}

/// Parses the `| `name` | kind | crate | meaning |` table rows out of
/// METRICS.md.
pub fn parse_metrics_inventory(text: &str) -> Vec<InventoryRow> {
    let mut out = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let t = line.trim();
        if !t.starts_with("| `") {
            continue;
        }
        let cells: Vec<&str> = t.split('|').map(str::trim).collect();
        // split on a well-formed row: ["", "`name`", "kind", "crate", "meaning", ""]
        if cells.len() < 5 {
            continue;
        }
        let name = cells[1].trim_matches('`').to_string();
        out.push(InventoryRow {
            name,
            kind: cells[2].to_string(),
            krate: cells[3].to_string(),
            line: i + 1,
        });
    }
    out
}

/// `metrics-drift`: every registered (tracked-prefix) metric must be
/// documented in METRICS.md with the right kind and crate, and every
/// documented metric must still be registered somewhere.
pub fn metrics_drift(
    defs: &[MetricDef],
    md_path: &Path,
    inventory: &[InventoryRow],
) -> Vec<Violation> {
    let mut v = Vec::new();
    let mut documented: BTreeMap<&str, &InventoryRow> = BTreeMap::new();
    for row in inventory {
        documented.insert(&row.name, row);
    }
    let mut registered: BTreeMap<&str, &MetricDef> = BTreeMap::new();
    for d in defs {
        registered.entry(&d.name).or_insert(d);
    }
    for (name, d) in &registered {
        match documented.get(name) {
            None => v.push(Violation {
                file: d.file.clone(),
                line: d.line,
                lint: "metrics-drift",
                message: format!(
                    "metric `{name}` is registered here but missing from METRICS.md \
                     (run `cargo xtask metrics` for the live inventory)"
                ),
            }),
            Some(row) if row.kind != d.kind || row.krate != d.krate => v.push(Violation {
                file: md_path.to_path_buf(),
                line: row.line,
                lint: "metrics-drift",
                message: format!(
                    "metric `{name}` documented as {}/{} but registered as {}/{} at {}:{}",
                    row.kind,
                    row.krate,
                    d.kind,
                    d.krate,
                    d.file.display(),
                    d.line
                ),
            }),
            Some(_) => {}
        }
    }
    for (name, row) in &documented {
        if !registered.contains_key(name) {
            v.push(Violation {
                file: md_path.to_path_buf(),
                line: row.line,
                lint: "metrics-drift",
                message: format!(
                    "metric `{name}` is documented in METRICS.md but never registered \
                     (stale row — remove it or restore the registration)"
                ),
            });
        }
    }
    v
}

/// Collects the full tracked-prefix metric inventory over the repo.
pub fn collect_repo_metrics(root: &Path) -> Vec<MetricDef> {
    let mut defs = Vec::new();
    let crates = root.join("crates");
    let Ok(entries) = std::fs::read_dir(&crates) else {
        return defs;
    };
    let mut dirs: Vec<PathBuf> = entries.flatten().map(|e| e.path()).collect();
    dirs.sort();
    for dir in dirs {
        if !dir.is_dir() {
            continue;
        }
        let krate = dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        let mut files = Vec::new();
        rs_files(&dir.join("src"), &mut files);
        for f in &files {
            defs.extend(collect_metric_defs(f, &read(f), &krate));
        }
    }
    defs
}

// ---------------------------------------------------------------------
// Repo driver + JSON
// ---------------------------------------------------------------------

/// Runs all four analysis lints over the repo rooted at `root`.
pub fn analyze_repo(root: &Path) -> Vec<Violation> {
    let mut v = Vec::new();
    let mut sites = Vec::new();
    let mut edges = Vec::new();
    for krate in LOCK_ORDER_CRATES {
        let mut files = Vec::new();
        rs_files(&root.join("crates").join(krate).join("src"), &mut files);
        for f in &files {
            let w = walk_guards(f, &read(f), true);
            v.extend(w.violations);
            sites.extend(w.sites);
            edges.extend(w.edges);
        }
    }
    v.extend(lock_graph_check(&sites, &edges));
    if std::env::var("XTASK_DUMP_EDGES").is_ok() {
        for e in &edges {
            eprintln!(
                "EDGE {} -> {} ({}:{})",
                e.outer,
                e.inner,
                e.file.display(),
                e.line
            );
        }
    }

    for krate in HOLD_ACROSS_AWAIT_CRATES {
        let mut files = Vec::new();
        rs_files(&root.join("crates").join(krate).join("src"), &mut files);
        for f in &files {
            v.extend(scan_hold_across_await(f, &read(f)));
        }
    }

    for rel in DURABILITY_FILES {
        let path = root.join(rel);
        v.extend(scan_durability(&path, &read(&path)));
    }

    let md_path = root.join("METRICS.md");
    let defs = collect_repo_metrics(root);
    let inventory = match std::fs::read_to_string(&md_path) {
        Ok(text) => parse_metrics_inventory(&text),
        Err(_) => Vec::new(), // a missing METRICS.md = every metric undocumented
    };
    v.extend(metrics_drift(&defs, &md_path, &inventory));
    v
}

/// Serializes violations as a JSON array (machine-readable `--json`
/// output for CI annotations). Paths are repo-relative.
pub fn violations_json(root: &Path, violations: &[Violation]) -> String {
    fn esc(s: &str) -> String {
        let mut out = String::with_capacity(s.len() + 2);
        for c in s.chars() {
            match c {
                '"' => out.push_str("\\\""),
                '\\' => out.push_str("\\\\"),
                '\n' => out.push_str("\\n"),
                '\t' => out.push_str("\\t"),
                c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
                c => out.push(c),
            }
        }
        out
    }
    let mut out = String::from("[");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let rel = v.file.strip_prefix(root).unwrap_or(&v.file);
        out.push_str(&format!(
            "\n  {{\"file\":\"{}\",\"line\":{},\"lint\":\"{}\",\"message\":\"{}\"}}",
            esc(&rel.display().to_string()),
            v.line,
            esc(v.lint),
            esc(&v.message)
        ));
    }
    if !violations.is_empty() {
        out.push('\n');
    }
    out.push(']');
    out
}
