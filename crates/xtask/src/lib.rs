//! Repo invariant lints — the checks `cargo xtask lint` runs.
//!
//! These are *repo* rules, not language rules: things rustc and clippy
//! cannot know, enforced by scanning source text. Each lint supports a
//! machine-checked waiver comment, so every exception in the tree carries
//! its justification next to the code:
//!
//! | lint              | rule                                                   | waiver             |
//! |-------------------|--------------------------------------------------------|--------------------|
//! | `safety-comments` | every `unsafe` site carries a `// SAFETY:` comment     | (the comment *is* the waiver) |
//! | `paper-constants` | `fcae::timing` / `fcae::cpu_model` take every model constant from `fcae::paper_tables` (Tables II/III/V) — no inline magic numbers | `// PAPER-CONST-OK:` |
//! | `determinism`     | cycle-model and simulator code never reads wall clocks (`Instant::now`, `SystemTime`, `thread::sleep`) — modeled time only | `// DETERMINISM-OK:` |
//! | `no-panics`       | library code never `unwrap`/`expect`/`panic!` outside `#[cfg(test)]` | `// PANIC-OK:`     |
//! | `no-direct-fs`    | library code touches the filesystem only through `sstable::env` — no direct `std::fs` calls, so fault injection (`FaultEnv`) sees every I/O | `// FS-OK:`        |
//!
//! A waiver counts when it appears in a trailing comment on the flagged
//! line or in the contiguous comment/attribute block directly above it.
//! The scanner blanks line comments and string literals before matching,
//! and tracks `#[cfg(test)] mod` bodies by brace depth so test code is
//! exempt where the rule says so.
//!
//! The scanner is textual, not syntactic — it can be fooled by exotic
//! formatting (a macro emitting `unsafe`, a `/* */` comment hiding
//! code). That trade keeps xtask dependency-free; the fixture tests in
//! `tests/` pin the behavior that matters, and `rustfmt`-normalized
//! source stays well inside what the scanner handles.
//!
//! The scope-aware pass (`cargo xtask analyze`: lock-order,
//! hold-across-await, durability-ordering, metrics-drift) builds on the
//! same line scanner — see `src/analyze.rs`'s module docs for the
//! tracker model and annotation grammar.

use std::fmt;
use std::path::{Path, PathBuf};

mod analyze;
pub use analyze::*;

/// One lint finding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// File the finding is in.
    pub file: PathBuf,
    /// 1-based line number.
    pub line: usize,
    /// Which lint fired.
    pub lint: &'static str,
    /// Human-readable rule statement.
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file.display(),
            self.line,
            self.lint,
            self.message
        )
    }
}

/// A source line prepared for scanning.
struct ScanLine {
    /// 1-based line number.
    no: usize,
    /// Raw text (used for waiver comments).
    raw: String,
    /// Text with line comments and string literals blanked out.
    code: String,
    /// True inside a `#[cfg(test)] mod` body.
    in_test_mod: bool,
}

/// Blanks string literals and the trailing `//` comment from one line,
/// so token matching never fires inside either. Char literals and raw
/// strings are left alone (no lint token contains a quote, and repo
/// style keeps raw strings out of the scanned paths).
fn blank_line(line: &str) -> String {
    let mut out = String::with_capacity(line.len());
    let mut chars = line.chars().peekable();
    let mut in_str = false;
    while let Some(c) = chars.next() {
        if in_str {
            match c {
                '\\' => {
                    out.push(' ');
                    if chars.next().is_some() {
                        out.push(' ');
                    }
                }
                '"' => {
                    in_str = false;
                    out.push('"');
                }
                _ => out.push(' '),
            }
        } else {
            match c {
                '"' => {
                    in_str = true;
                    out.push('"');
                }
                '/' if chars.peek() == Some(&'/') => {
                    // Rest of the line is a comment.
                    break;
                }
                _ => out.push(c),
            }
        }
    }
    out
}

/// Prepares `source` for scanning: blanks comments/strings and marks
/// `#[cfg(test)] mod` bodies (including `cfg(all(loom, test))` and
/// similar `cfg(... test ...)` attribute forms).
fn scan_lines(source: &str) -> Vec<ScanLine> {
    let mut lines = Vec::new();
    let mut pending_test_attr = false;
    let mut test_depth: Option<i32> = None;
    for (i, raw) in source.lines().enumerate() {
        let code = blank_line(raw);
        let trimmed = code.trim();
        let mut in_test_mod = test_depth.is_some();

        if let Some(depth) = &mut test_depth {
            *depth += brace_delta(&code);
            if *depth <= 0 {
                test_depth = None;
            }
        } else {
            if trimmed.starts_with("#[cfg(") && trimmed.contains("test") {
                pending_test_attr = true;
            } else if pending_test_attr {
                if trimmed.starts_with("mod ") || trimmed.starts_with("pub mod ") {
                    in_test_mod = true;
                    let depth = brace_delta(&code);
                    if depth > 0 {
                        test_depth = Some(depth);
                    }
                    pending_test_attr = false;
                } else if !trimmed.starts_with("#[") && !trimmed.is_empty() {
                    // The attribute gated something other than a mod
                    // (a fn, an impl): not a test module.
                    pending_test_attr = false;
                }
            }
        }

        lines.push(ScanLine {
            no: i + 1,
            raw: raw.to_string(),
            code,
            in_test_mod,
        });
    }
    lines
}

fn brace_delta(code: &str) -> i32 {
    let mut d = 0;
    for c in code.chars() {
        match c {
            '{' => d += 1,
            '}' => d -= 1,
            _ => {}
        }
    }
    d
}

/// True if `token` appears as a standalone word in `code`.
fn has_word(code: &str, token: &str) -> bool {
    let mut start = 0;
    while let Some(pos) = code[start..].find(token) {
        let at = start + pos;
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = at + token.len();
        let after_ok = after >= code.len()
            || !code[after..]
                .chars()
                .next()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + token.len();
    }
    false
}

/// True if line `idx` (0-based into `lines`) is waived by `token`: the
/// token appears in a trailing comment on the line itself or anywhere in
/// the contiguous comment/attribute block directly above it.
fn waived(lines: &[ScanLine], idx: usize, token: &str) -> bool {
    let trailing = &lines[idx].raw;
    if let Some(pos) = trailing.find("//") {
        if trailing[pos..].contains(token) {
            return true;
        }
    }
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let t = lines[i].raw.trim();
        if t.starts_with("//") {
            if t.contains(token) {
                return true;
            }
        } else if t.starts_with("#[") || t.starts_with("#![") {
            // Attributes may sit between the comment and the item.
        } else {
            break;
        }
    }
    false
}

// ---------------------------------------------------------------------
// Per-file scanners (fixture tests drive these directly)
// ---------------------------------------------------------------------

/// `safety-comments`: every line using `unsafe` must carry a `SAFETY:`
/// comment (trailing, or in the comment block above). Applies everywhere,
/// tests included — unsafe code is never self-justifying.
pub fn scan_safety(file: &Path, source: &str) -> Vec<Violation> {
    let lines = scan_lines(source);
    let mut out = Vec::new();
    for (i, l) in lines.iter().enumerate() {
        if has_word(&l.code, "unsafe")
            && !l.code.contains("unsafe_code")
            && !waived(&lines, i, "SAFETY:")
        {
            out.push(Violation {
                file: file.to_path_buf(),
                line: l.no,
                lint: "safety-comments",
                message: "`unsafe` without a `// SAFETY:` comment justifying it".into(),
            });
        }
    }
    out
}

/// Float literals the model files may use inline: identity/zero values
/// and unit conversions. Everything else must be a named
/// `fcae::paper_tables` constant.
pub const FLOAT_ALLOWLIST: &[&str] = &["0.0", "1.0", "1e6", "1e-6", "1e-9"];

/// `paper-constants`: in `fcae::timing` / `fcae::cpu_model`, outside
/// tests, (a) no `const` with a numeric initializer — model constants
/// live in `fcae::paper_tables`; (b) no float literal outside
/// [`FLOAT_ALLOWLIST`].
pub fn scan_paper_constants(file: &Path, source: &str) -> Vec<Violation> {
    let lines = scan_lines(source);
    let mut out = Vec::new();
    for (i, l) in lines.iter().enumerate() {
        if l.in_test_mod {
            continue;
        }
        let code = l.code.trim();
        let is_const_decl = (code.starts_with("const ") || code.starts_with("pub const "))
            && code.contains('=')
            && code
                .split('=')
                .nth(1)
                .is_some_and(|rhs| rhs.trim().starts_with(|c: char| c.is_ascii_digit()));
        if is_const_decl && !waived(&lines, i, "PAPER-CONST-OK:") {
            out.push(Violation {
                file: file.to_path_buf(),
                line: l.no,
                lint: "paper-constants",
                message:
                    "inline numeric constant; move it to fcae::paper_tables (paper Tables II/III/V)"
                        .into(),
            });
            continue;
        }
        for lit in float_literals(&l.code) {
            if !FLOAT_ALLOWLIST.contains(&lit.as_str()) && !waived(&lines, i, "PAPER-CONST-OK:") {
                out.push(Violation {
                    file: file.to_path_buf(),
                    line: l.no,
                    lint: "paper-constants",
                    message: format!(
                        "magic float `{lit}`; name it in fcae::paper_tables (allowed inline: {FLOAT_ALLOWLIST:?})"
                    ),
                });
            }
        }
    }
    out
}

/// Extracts float-shaped literals (`1.5`, `2e3`, `1e-6`) from a line.
fn float_literals(code: &str) -> Vec<String> {
    let bytes = code.as_bytes();
    let mut out = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i].is_ascii_digit()
            && (i == 0
                || (!bytes[i - 1].is_ascii_alphanumeric()
                    && bytes[i - 1] != b'_'
                    && bytes[i - 1] != b'.'))
        {
            let start = i;
            while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                i += 1;
            }
            let mut is_float = false;
            if i + 1 < bytes.len() && bytes[i] == b'.' && bytes[i + 1].is_ascii_digit() {
                is_float = true;
                i += 1;
                while i < bytes.len() && (bytes[i].is_ascii_digit() || bytes[i] == b'_') {
                    i += 1;
                }
            }
            if i < bytes.len() && (bytes[i] == b'e' || bytes[i] == b'E') {
                let mut j = i + 1;
                if j < bytes.len() && (bytes[j] == b'+' || bytes[j] == b'-') {
                    j += 1;
                }
                if j < bytes.len() && bytes[j].is_ascii_digit() {
                    is_float = true;
                    i = j;
                    while i < bytes.len() && bytes[i].is_ascii_digit() {
                        i += 1;
                    }
                }
            }
            if is_float {
                out.push(code[start..i].to_string());
            }
        } else {
            i += 1;
        }
    }
    out
}

/// Wall-clock calls banned from deterministic model/simulator code.
const WALL_CLOCK_TOKENS: &[&str] = &["Instant::now", "SystemTime", "thread::sleep"];

/// `determinism`: cycle-model and simulator code must advance modeled
/// time only — wall-clock reads make modeled results depend on the host.
/// Tests are exempt (they may time themselves); production waivers take
/// `// DETERMINISM-OK: <why>`.
pub fn scan_determinism(file: &Path, source: &str) -> Vec<Violation> {
    let lines = scan_lines(source);
    let mut out = Vec::new();
    for (i, l) in lines.iter().enumerate() {
        if l.in_test_mod {
            continue;
        }
        for token in WALL_CLOCK_TOKENS {
            if l.code.contains(token) && !waived(&lines, i, "DETERMINISM-OK:") {
                out.push(Violation {
                    file: file.to_path_buf(),
                    line: l.no,
                    lint: "determinism",
                    message: format!(
                        "wall-clock `{token}` in deterministic model code (waiver: // DETERMINISM-OK: <why>)"
                    ),
                });
            }
        }
    }
    out
}

/// Panic-family calls banned from library code outside tests.
const PANIC_TOKENS: &[&str] = &[
    ".unwrap()",
    ".expect(",
    "panic!(",
    "unreachable!(",
    "todo!(",
    "unimplemented!(",
];

/// `no-panics`: library crates return `Result`; aborting the process is
/// the caller's decision. Outside `#[cfg(test)]`, panic-family calls need
/// a `// PANIC-OK: <why>` waiver stating the invariant that makes the
/// panic unreachable (or why aborting is correct).
pub fn scan_no_panics(file: &Path, source: &str) -> Vec<Violation> {
    let lines = scan_lines(source);
    let mut out = Vec::new();
    for (i, l) in lines.iter().enumerate() {
        if l.in_test_mod {
            continue;
        }
        for token in PANIC_TOKENS {
            if l.code.contains(token) && !waived(&lines, i, "PANIC-OK:") {
                out.push(Violation {
                    file: file.to_path_buf(),
                    line: l.no,
                    lint: "no-panics",
                    message: format!(
                        "`{}` in library code (return an error, or waive: // PANIC-OK: <why>)",
                        token.trim_start_matches('.')
                    ),
                });
            }
        }
    }
    out
}

/// `no-direct-fs`: library code reaches the filesystem only through the
/// `sstable::env` abstraction. A direct `std::fs` call bypasses
/// `StorageEnv` — and with it fault injection, power-cut simulation, and
/// the in-memory env — so crash tests silently stop covering that I/O.
/// Tests are exempt (they may scrub temp dirs); production waivers take
/// `// FS-OK: <why>`. The `sstable::env` module itself carries one.
pub fn scan_direct_fs(file: &Path, source: &str) -> Vec<Violation> {
    let lines = scan_lines(source);
    let mut out = Vec::new();
    for (i, l) in lines.iter().enumerate() {
        if l.in_test_mod {
            continue;
        }
        if l.code.contains("std::fs") && !waived(&lines, i, "FS-OK:") {
            out.push(Violation {
                file: file.to_path_buf(),
                line: l.no,
                lint: "no-direct-fs",
                message: "direct `std::fs` use in library code; go through \
                          `sstable::env::StorageEnv` (waiver: // FS-OK: <why>)"
                    .into(),
            });
        }
    }
    out
}

// ---------------------------------------------------------------------
// Repo-level drivers
// ---------------------------------------------------------------------

/// Recursively collects `.rs` files under `dir`, skipping `target/` and
/// xtask's own lint fixtures (which exist to *violate* the lints).
fn rs_files(dir: &Path, out: &mut Vec<PathBuf>) {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return;
    };
    for entry in entries.flatten() {
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            rs_files(&path, out);
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    out.sort();
}

fn read(path: &Path) -> String {
    // PANIC-OK: xtask is a dev tool; an unreadable source file should
    // abort the lint run loudly rather than pass silently.
    std::fs::read_to_string(path)
        .unwrap_or_else(|e| panic!("xtask: cannot read {}: {e}", path.display()))
}

/// Library crates `no-panics` covers: everything a downstream links
/// against. `bench` (binaries + harness lib) and `xtask` itself are
/// tools, not libraries.
const LIBRARY_CRATES: &[&str] = &[
    "core",
    "fcae",
    "lsm",
    "obs",
    "offload",
    "server",
    "simkit",
    "snappy",
    "sstable",
    "systemsim",
    "workloads",
];

/// Crates whose `src/` must stay wall-clock-free (cycle model, the two
/// simulators, and the observability layer — whose only wall-clock use
/// is the explicitly waived [`obs::WallClock`]).
const DETERMINISTIC_CRATES: &[&str] = &["fcae", "obs", "simkit", "systemsim"];

/// Runs every lint over the repo rooted at `root`.
pub fn lint_repo(root: &Path) -> Vec<Violation> {
    let mut violations = Vec::new();

    // safety-comments: all Rust sources, shims and tests included.
    let mut files = Vec::new();
    rs_files(&root.join("crates"), &mut files);
    rs_files(&root.join("shims"), &mut files);
    for f in &files {
        violations.extend(scan_safety(f, &read(f)));
    }

    // paper-constants: the two fcae model files mirroring paper tables.
    for f in ["timing.rs", "cpu_model.rs"] {
        let path = root.join("crates/fcae/src").join(f);
        violations.extend(scan_paper_constants(&path, &read(&path)));
    }

    // determinism: model + simulator crate sources.
    for krate in DETERMINISTIC_CRATES {
        let mut files = Vec::new();
        rs_files(&root.join("crates").join(krate).join("src"), &mut files);
        for f in &files {
            violations.extend(scan_determinism(f, &read(f)));
        }
    }

    // no-panics + no-direct-fs: library crate sources, excluding their
    // bin targets. The storage backend in `sstable::env` carries the one
    // standing `FS-OK:` waiver.
    for krate in LIBRARY_CRATES {
        let mut files = Vec::new();
        rs_files(&root.join("crates").join(krate).join("src"), &mut files);
        for f in &files {
            if f.components().any(|c| c.as_os_str() == "bin") {
                continue;
            }
            let source = read(f);
            violations.extend(scan_no_panics(f, &source));
            violations.extend(scan_direct_fs(f, &source));
        }
    }

    violations
}
