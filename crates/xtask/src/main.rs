//! `cargo xtask` — repo automation entry point.
//!
//! Subcommands:
//!
//! * `lint` — run the invariant lints (see [`xtask`] crate docs) over the
//!   whole repo. Exits nonzero if any lint fires; prints one
//!   `path:line: [lint] message` per violation.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some(other) => {
            eprintln!("xtask: unknown command `{other}`");
            eprintln!("usage: cargo xtask lint");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask lint");
            ExitCode::FAILURE
        }
    }
}

fn lint() -> ExitCode {
    // The xtask manifest lives at <root>/crates/xtask.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask sits two levels below the repo root"); // PANIC-OK: dev tool, structural invariant of this repo.
    let violations = xtask::lint_repo(root);
    if violations.is_empty() {
        println!(
            "xtask lint: clean (safety-comments, paper-constants, determinism, no-panics, no-direct-fs)"
        );
        ExitCode::SUCCESS
    } else {
        for v in &violations {
            // Paths relative to the root read better in CI logs.
            let rel = v
                .file
                .strip_prefix(root)
                .unwrap_or(&v.file)
                .display()
                .to_string();
            eprintln!("{rel}:{}: [{}] {}", v.line, v.lint, v.message);
        }
        eprintln!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}
