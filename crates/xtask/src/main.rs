//! `cargo xtask` — repo automation entry point.
//!
//! Subcommands:
//!
//! * `lint` — run the line-based invariant lints (see [`xtask`] crate
//!   docs) over the whole repo. Exits nonzero if any lint fires; prints
//!   one `path:line: [lint] message` per violation.
//! * `analyze [--json]` — run the scope-aware concurrency/durability
//!   lints (lock-order, hold-across-await, durability-ordering,
//!   metrics-drift). `--json` emits a machine-readable violation array
//!   on stdout for CI annotation.
//! * `metrics` — print the live metric inventory (name, kind, crate,
//!   site) collected from source, for regenerating METRICS.md rows.

use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        Some("analyze") => analyze(args.iter().any(|a| a == "--json")),
        Some("metrics") => metrics(),
        Some(other) => {
            eprintln!("xtask: unknown command `{other}`");
            eprintln!("usage: cargo xtask <lint | analyze [--json] | metrics>");
            ExitCode::FAILURE
        }
        None => {
            eprintln!("usage: cargo xtask <lint | analyze [--json] | metrics>");
            ExitCode::FAILURE
        }
    }
}

/// The xtask manifest lives at `<root>/crates/xtask`.
fn repo_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("xtask sits two levels below the repo root") // PANIC-OK: dev tool, structural invariant of this repo.
}

fn print_violations(root: &Path, violations: &[xtask::Violation]) {
    for v in violations {
        // Paths relative to the root read better in CI logs.
        let rel = v
            .file
            .strip_prefix(root)
            .unwrap_or(&v.file)
            .display()
            .to_string();
        eprintln!("{rel}:{}: [{}] {}", v.line, v.lint, v.message);
    }
}

fn lint() -> ExitCode {
    let root = repo_root();
    let violations = xtask::lint_repo(root);
    if violations.is_empty() {
        println!(
            "xtask lint: clean (safety-comments, paper-constants, determinism, no-panics, no-direct-fs)"
        );
        ExitCode::SUCCESS
    } else {
        print_violations(root, &violations);
        eprintln!("xtask lint: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

fn analyze(json: bool) -> ExitCode {
    let root = repo_root();
    let violations = xtask::analyze_repo(root);
    if json {
        println!("{}", xtask::violations_json(root, &violations));
        return if violations.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }
    if violations.is_empty() {
        println!(
            "xtask analyze: clean (lock-order, hold-across-await, durability-ordering, metrics-drift)"
        );
        ExitCode::SUCCESS
    } else {
        print_violations(root, &violations);
        eprintln!("xtask analyze: {} violation(s)", violations.len());
        ExitCode::FAILURE
    }
}

fn metrics() -> ExitCode {
    let root = repo_root();
    for d in xtask::collect_repo_metrics(root) {
        let rel = d
            .file
            .strip_prefix(root)
            .unwrap_or(&d.file)
            .display()
            .to_string();
        println!("{}\t{}\t{}\t{rel}:{}", d.name, d.kind, d.krate, d.line);
    }
    ExitCode::SUCCESS
}
