#!/usr/bin/env bash
# Full verification, mirroring .github/workflows/ci.yml (fmt, clippy,
# tier-1 build+test) and then going further: docs, release tests, and
# every experiment bench.
set -euo pipefail
cd "$(dirname "$0")/.."

# CI jobs.
cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
cargo build --release
cargo test -q

# Extended checks.
cargo build --workspace --all-targets
cargo doc --no-deps --workspace
cargo test --workspace --release
cargo bench --workspace
echo "all checks passed"
