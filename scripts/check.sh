#!/usr/bin/env bash
# Full verification, mirroring .github/workflows/ci.yml (fmt, clippy,
# xtask lints, tier-1 build+test, loom models) and then going further:
# docs, release tests, and every experiment bench. Tools CI runs on
# nightly (miri, TSan) and cargo-deny are skipped gracefully when not
# installed locally.
set -euo pipefail
cd "$(dirname "$0")/.."

# CI jobs.
cargo fmt --all --check
cargo clippy --workspace --all-targets -- -D warnings
# Repo invariant lints: SAFETY comments, paper-table constants,
# wall-clock bans in model code, no-panics in libraries.
cargo xtask lint
# Scope-aware concurrency/durability lints: lock-order ranks,
# hold-across-await, sync-before-rename, metrics-drift.
cargo xtask analyze
cargo build --release
cargo test -q

# Observability smoke: the --stats export must carry live metrics, and
# two identical simulated runs must export byte-identical output.
cargo run --release -p bench --bin db_bench -- \
    --num 20000 --benchmarks fillrandom --engine fcae --stats \
    | grep -q "hist lsm.put_micros" \
    || { echo "obs smoke failed: no lsm.put_micros in --stats export"; exit 1; }
# Multi-writer smoke: 4 client threads must exercise (and export) the
# parallel write path's group-commit metrics.
cargo run --release -p bench --bin db_bench -- \
    --num 20000 --benchmarks fillrandom,ycsb-a --threads 4 --stats \
    | grep -q "counter lsm.write.leader" \
    || { echo "obs smoke failed: no lsm.write.leader in --threads export"; exit 1; }
cargo test -q -p systemsim identical_runs_export_identical_observability

# Fault matrix: the randomized power-cut harness already ran on its
# default seed band in `cargo test -q`; sweep a second band like CI's
# fault-matrix job, then the corruption-repair property suite and the
# degradation smoke (write fault -> read-only, read corruption ->
# checksum error, transient compaction fault -> retry).
POWER_CUT_SEED_BASE=100 cargo test -q -p fcae-repro --test power_cut power_cut_recovers
POWER_CUT_SEED_BASE=100 cargo test -q -p fcae-repro --test power_cut multi_writer_synced_acks_survive_power_cut
cargo test -q -p lsm --test proptest_repair
cargo run --release -p bench --bin db_bench -- \
    --num 20000 --benchmarks fillrandom --fault-every 2 --stats \
    | grep -q "offload.fault.transient" \
    || { echo "fault smoke failed: no offload.fault.* counters in --stats export"; exit 1; }

# Replication matrix: the failover bands (leader power-cut -> promote ->
# acked prefix survives, with and without the value log, plus the
# clean-catchup digest-equality band and the real-process SIGKILL band)
# already ran on the default seed band in `cargo test -q`; sweep the
# second band like CI's replication-matrix job.
POWER_CUT_SEED_BASE=100 cargo test -q -p fcae-repro --test replication_failover
POWER_CUT_SEED_BASE=100 cargo test -q -p server --test replication_sigkill

# Server smoke (mirrors CI's server-smoke job): 4-shard kv-server on an
# OS-assigned port, YCSB-A at 64 connections, zero protocol errors and
# nonzero throughput required; then the SIGKILL power-cut harness.
cargo build --release -p server
SERVER_OUT=$(mktemp)
SERVER_ROOT=$(mktemp -d)
./target/release/kv-server --listen 127.0.0.1:0 --shards 4 --engines 2 \
    --records 10000 --root "$SERVER_ROOT" > "$SERVER_OUT" &
SERVER_PID=$!
for _ in $(seq 50); do grep -q "listening on " "$SERVER_OUT" && break; sleep 0.2; done
SERVER_ADDR=$(sed -n 's/^listening on \([^ ]*\).*/\1/p' "$SERVER_OUT")
[ -n "$SERVER_ADDR" ] || { echo "server smoke failed: server never bound"; exit 1; }
./target/release/load_gen --addr "$SERVER_ADDR" --workload a \
    --connections 64 --seconds 10 | tee "$SERVER_OUT.load"
kill "$SERVER_PID" 2>/dev/null || true
if ! grep -q "protocol_errors=0" "$SERVER_OUT.load"; then
    echo "server smoke failed: protocol errors"; exit 1
fi
if grep -q "throughput_ops_s=0 " "$SERVER_OUT.load"; then
    echo "server smoke failed: zero throughput"; exit 1
fi
rm -rf "$SERVER_ROOT" "$SERVER_OUT" "$SERVER_OUT.load"
cargo test -q -p server --test power_cut

# Loom model suites (shutdown/backpressure/fault-retry/aging
# interleavings). Deadlocks present as hangs, so bound them.
RUSTFLAGS="--cfg loom" timeout 1200 cargo test -p lsm --lib -q
RUSTFLAGS="--cfg loom" timeout 1200 cargo test -p offload --lib -q
RUSTFLAGS="--cfg loom" timeout 1200 cargo test -p fcae --test loom_comparer -q

# Nightly-only / optional tooling: run when available, skip otherwise
# (CI's static-analysis, miri, and tsan jobs are authoritative).
if cargo deny --version >/dev/null 2>&1; then
    cargo deny check bans licenses sources
else
    echo "skip: cargo-deny not installed"
fi
if cargo +nightly miri --version >/dev/null 2>&1; then
    MIRIFLAGS=-Zmiri-disable-isolation cargo +nightly miri test -p sstable --lib
    MIRIFLAGS=-Zmiri-disable-isolation cargo +nightly miri test -p snap-codec --lib
    MIRIFLAGS=-Zmiri-disable-isolation cargo +nightly miri test -p fcae --lib
else
    echo "skip: miri not installed"
fi
# ASan/LSan over the unsafe-adjacent data-plane crates (mirrors CI's
# asan job). Needs nightly with rust-src on a linux-gnu host.
HOST_TRIPLE=$(rustc -vV | sed -n 's/^host: //p')
if [[ "$HOST_TRIPLE" == *-linux-gnu ]] \
    && cargo +nightly --version >/dev/null 2>&1 \
    && rustup component list --toolchain nightly 2>/dev/null \
        | grep -q "^rust-src.*(installed)"; then
    for asan_crate in sstable snap-codec fcae; do
        RUSTFLAGS=-Zsanitizer=address ASAN_OPTIONS=detect_leaks=1 \
            cargo +nightly test -q -p "$asan_crate" --lib \
            -Zbuild-std --target "$HOST_TRIPLE"
    done
else
    echo "skip: ASan needs nightly + rust-src on a linux-gnu host"
fi

# Extended checks.
cargo build --workspace --all-targets
cargo doc --no-deps --workspace
cargo test --workspace --release
cargo bench --workspace
echo "all checks passed"
