#!/usr/bin/env bash
# Full verification: build, lint, docs, tests, and every experiment bench.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --workspace --all-targets
cargo clippy --workspace --all-targets -- -D warnings
cargo doc --no-deps --workspace
cargo test --workspace
cargo test --workspace --release
cargo bench --workspace
echo "all checks passed"
