#!/usr/bin/env bash
# Appends one perf-trajectory snapshot to BENCH_PR2.json.
#
# Usage: scripts/bench_snapshot.sh [label] [out-file]
#
# Runs the merge microbenchmark (4-input, 1 KiB values, both engines,
# with allocation counting) and a db_bench-style fillrandom pass, and
# appends the results as one labelled JSON object. Run it before and
# after a perf change (e.g. labels "pr3-before" / "pr3-after") so the
# repo carries its own performance history.
set -euo pipefail
cd "$(dirname "$0")/.."

LABEL="${1:-$(git rev-parse --short HEAD 2>/dev/null || echo snapshot)}"
OUT="${2:-BENCH_PR2.json}"

cargo run --release -p bench --bin bench_snapshot -- --label "$LABEL" --out "$OUT"
