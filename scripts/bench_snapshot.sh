#!/usr/bin/env bash
# Appends one perf-trajectory snapshot to the repo's bench history.
#
# Usage: scripts/bench_snapshot.sh [label] [out-file]
#        scripts/bench_snapshot.sh --server [label] [out-file]
#        scripts/bench_snapshot.sh --write-scaling [label] [out-file]
#        scripts/bench_snapshot.sh --vlog [label] [out-file]
#
# Default mode runs the merge microbenchmark (4-input, 1 KiB values,
# both engines, with allocation counting) and a db_bench-style
# fillrandom pass, appending one labelled JSON object to BENCH_PR2.json.
#
# --server runs the serving-layer saturation sweep instead: YCSB-A over
# TCP against an in-process 4-shard server, throughput + p50/p99 vs.
# connection count at K=1 and K=4 engine slots, appended to
# BENCH_PR6.json.
#
# --write-scaling runs the parallel-write-path curve: sync-write
# fillrandom ops/s vs. writer threads (1/2/4/8) with group-commit
# shape per point, appended to BENCH_PR7.json.
#
# --vlog runs the key-value-separation comparison: fillrandom with
# 1 KiB values inline vs. through the value log (compaction bytes
# moved, fill throughput, point-read cost), appended to BENCH_PR9.json.
#
# Run it before and after a perf change (e.g. labels "pr3-before" /
# "pr3-after") so the repo carries its own performance history.
set -euo pipefail
cd "$(dirname "$0")/.."

MODE=bench
if [ "${1:-}" = "--server" ]; then
    MODE=server
    shift
elif [ "${1:-}" = "--write-scaling" ]; then
    MODE=write_scaling
    shift
elif [ "${1:-}" = "--vlog" ]; then
    MODE=vlog
    shift
fi

LABEL="${1:-$(git rev-parse --short HEAD 2>/dev/null || echo snapshot)}"

if [ "$MODE" = "server" ]; then
    OUT="${2:-BENCH_PR6.json}"
    cargo run --release -p server --bin server_saturation -- --label "$LABEL" --out "$OUT"
elif [ "$MODE" = "write_scaling" ]; then
    OUT="${2:-BENCH_PR7.json}"
    cargo run --release -p bench --bin write_scaling -- --label "$LABEL" --out "$OUT"
elif [ "$MODE" = "vlog" ]; then
    OUT="${2:-BENCH_PR9.json}"
    cargo run --release -p bench --bin vlog_compare -- --label "$LABEL" --out "$OUT"
else
    OUT="${2:-BENCH_PR2.json}"
    cargo run --release -p bench --bin bench_snapshot -- --label "$LABEL" --out "$OUT"
fi
